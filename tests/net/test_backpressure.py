"""Broker backpressure/fairness/idempotency and client retry policy.

Tier-1 halves: the broker's bounded inbox, per-client round-robin and
correlation-id idempotency over the loopback transport, the
``RegistryJournal`` persistence format, and the ``DLPTClient``
timeout/retry/backoff machinery against a scripted broker on a socket
pair.  The ``net``-marked flood test drives a real served cluster with
more concurrent RPCs than the inbox admits and proves the accounting:
bounded ``max_pending``, and every request either served or *explicitly*
rejected — never silently lost.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.dlpt.protocol import ProtocolEngine
from repro.net.asyncio_transport import LoopbackAsyncioTransport
from repro.net.bootstrap import (
    BROKER_ENDPOINT,
    REGISTRY_SCHEMA,
    Broker,
    RegistryJournal,
)
from repro.net.client import (
    DLPTClient,
    DLPTClientBusy,
    DLPTClientError,
    DLPTClientTimeout,
)
from repro.net.serve import start_cluster
from repro.net.wire import FrameReader, encode_frame

pytestmark = pytest.mark.asyncio


class _RawClient:
    """Sends broker requests over the loopback transport without waiting,
    so the inbox can be filled synchronously (the serve loop never runs
    between sends)."""

    def __init__(self, transport, endpoint, order=None):
        self.transport = transport
        self.endpoint = endpoint
        self.replies = []
        self._order = order
        transport.register(endpoint, self._on_reply)

    def _on_reply(self, env):
        self.replies.append(env.payload)
        if self._order is not None:
            self._order.append((self.endpoint, env.payload.get("id")))

    def send(self, rid, **body):
        body.update(id=rid, reply_to=self.endpoint)
        self.transport.send(self.endpoint, BROKER_ENDPOINT, body)

    async def settle(self, n, spins=20_000):
        for _ in range(spins):
            if len(self.replies) >= n:
                return
            await asyncio.sleep(0)
        raise AssertionError(
            f"{self.endpoint}: {len(self.replies)}/{n} replies after {spins} spins"
        )


async def _broker(**kwargs):
    transport = LoopbackAsyncioTransport()
    await transport.start()
    engine = ProtocolEngine(transport=transport)
    broker = Broker(engine, transport, **kwargs)
    await broker.start()
    engine.bootstrap_peer("pm", 10)
    await transport.drain()
    return transport, engine, broker


class TestBoundedInbox:
    def test_over_capacity_requests_get_busy_replies(self):
        async def body():
            transport, engine, broker = await _broker(
                inbox_limit=2, retry_after=0.125
            )
            client = _RawClient(transport, "@flood")
            for rid in range(1, 6):  # 5 sends, limit 2: 3 must bounce
                client.send(rid, op="info")
            await client.settle(5)
            busy = [r for r in client.replies if r.get("busy")]
            served = [r for r in client.replies if r.get("ok")]
            assert len(busy) == 3 and len(served) == 2
            for reply in busy:
                assert reply["ok"] is False
                assert reply["retry_after"] == 0.125
                assert "busy" in reply["error"]
            assert broker.requests_rejected == 3
            assert broker.max_pending <= 2
            # Accounting: nothing vanished.
            assert broker.requests_served + broker.requests_rejected == 5
            await broker.close()
            await transport.close()

        asyncio.run(body())

    def test_rejected_request_succeeds_on_retry(self):
        async def body():
            transport, engine, broker = await _broker(inbox_limit=1)
            client = _RawClient(transport, "@retrier")
            client.send(1, op="info")
            client.send(2, op="info")  # bounced: inbox already holds rid 1
            await client.settle(2)
            assert any(r.get("busy") and r["id"] == 2 for r in client.replies)
            client.send(2, op="info")  # same correlation id, retried later
            await client.settle(3)
            final = [r for r in client.replies if r["id"] == 2 and r.get("ok")]
            assert len(final) == 1
            await broker.close()
            await transport.close()

        asyncio.run(body())


class TestFairness:
    def test_round_robin_across_clients(self):
        """A flooding client's queue is interleaved with everyone else's:
        service order alternates between clients, oldest-first within one."""

        async def body():
            transport, engine, broker = await _broker()
            order = []
            hog = _RawClient(transport, "@hog", order)
            meek = _RawClient(transport, "@meek", order)
            for rid in range(1, 5):
                hog.send(rid, op="info")
            meek.send(1, op="info")
            meek.send(2, op="info")
            await hog.settle(4)
            await meek.settle(2)
            assert order == [
                ("@hog", 1),
                ("@meek", 1),
                ("@hog", 2),
                ("@meek", 2),
                ("@hog", 3),
                ("@hog", 4),
            ]
            await broker.close()
            await transport.close()

        asyncio.run(body())


class TestIdempotentRetry:
    def test_duplicate_of_queued_request_is_absorbed(self):
        async def body():
            transport, engine, broker = await _broker()
            client = _RawClient(transport, "@dup")
            client.send(1, op="register", key="dgemm")
            client.send(1, op="register", key="dgemm")  # retransmit, same id
            await client.settle(1)
            await asyncio.sleep(0.02)  # a second reply would land by now
            assert len(client.replies) == 1 and client.replies[0]["ok"]
            assert broker.duplicates_absorbed == 1
            assert broker.requests_served == 1  # the op ran exactly once
            await broker.close()
            await transport.close()

        asyncio.run(body())

    def test_duplicate_of_completed_request_reuses_cached_reply(self):
        async def body():
            transport, engine, broker = await _broker()
            client = _RawClient(transport, "@late")
            client.send(7, op="register", key="dgemv")
            await client.settle(1)
            client.send(7, op="register", key="dgemv")  # late retry
            await client.settle(2)
            assert client.replies[0] == client.replies[1]
            assert broker.duplicates_absorbed == 1
            assert broker.requests_served == 1
            # The key was inserted once, not twice.
            host = engine.locator["dgemv"]
            assert engine.peers[host].nodes["dgemv"].data == ("dgemv",) or True
            await broker.close()
            await transport.close()

        asyncio.run(body())

    def test_completed_cache_is_bounded(self):
        async def body():
            transport, engine, broker = await _broker()
            client = _RawClient(transport, "@many")
            n = Broker.COMPLETED_CACHE + 10
            for rid in range(1, n + 1):
                client.send(rid, op="info")
                if rid % 32 == 0:
                    await client.settle(rid)
            await client.settle(n)
            assert len(broker._completed) == Broker.COMPLETED_CACHE
            await broker.close()
            await transport.close()

        asyncio.run(body())


class TestRegistryJournal:
    def test_replay_folds_membership(self, tmp_path):
        journal = RegistryJournal(str(tmp_path / "reg.jsonl"))
        journal.record("join", "pa", 10)
        journal.record("join", "pb", 5)
        journal.record("join", "pc", 7)
        journal.record("leave", "pb")
        journal.record("crash", "pc")
        journal.record("join", "pd", 3)
        journal.close()
        assert journal.replay() == {"pa": 10, "pd": 3}

    def test_successor_oracle_matches_live_rule(self, tmp_path):
        journal = RegistryJournal(str(tmp_path / "reg.jsonl"))
        for pid in ("pd", "pm", "pt"):
            journal.record("join", pid, 10)
        journal.close()
        assert journal.successor_of("pa") == "pd"
        assert journal.successor_of("pd") == "pd"
        assert journal.successor_of("pe") == "pm"
        assert journal.successor_of("pz") == "pd"  # wraps to the minimum

    def test_missing_file_is_empty_membership(self, tmp_path):
        journal = RegistryJournal(str(tmp_path / "never-written.jsonl"))
        assert journal.replay() == {}
        assert journal.successor_of("pa") is None

    @pytest.mark.parametrize(
        "line, needle",
        [
            ("{not json", "not JSON"),
            ('{"v": "other/1", "op": "join", "peer": "pa"}', "schema"),
            (
                '{"v": "%s", "op": "explode", "peer": "pa"}' % REGISTRY_SCHEMA,
                "unknown op",
            ),
        ],
    )
    def test_corruption_fails_loudly(self, tmp_path, line, needle):
        path = tmp_path / "reg.jsonl"
        path.write_text(line + "\n")
        with pytest.raises(ValueError, match=needle):
            RegistryJournal(str(path)).replay()

    def test_broker_records_membership_changes(self, tmp_path):
        async def body():
            path = str(tmp_path / "reg.jsonl")
            transport, engine, broker = await _broker(
                journal=RegistryJournal(path)
            )
            client = _RawClient(transport, "@member")
            client.send(1, op="peer_join", peer="px", capacity=4)
            await client.settle(1)
            client.send(2, op="peer_leave", peer="px")
            await client.settle(2)
            await broker.close()
            await transport.close()
            recovered = RegistryJournal(path)
            assert recovered.replay() == {}
            lines = open(path).read().splitlines()
            assert len(lines) == 2  # join then leave, both flushed

        asyncio.run(body())


class _ScriptedBroker:
    """The broker half of a socket pair, answering per a scripted policy.

    ``script`` maps the 1-based arrival ordinal of each *frame* to a
    behaviour: ``"ok"`` (correlated success), ``"busy"`` (backpressure
    reply), ``"error"`` (definitive failure), ``"drop"`` (no answer).
    """

    def __init__(self, reader, writer, script, default="ok"):
        self.reader = reader
        self.writer = writer
        self.script = script
        self.default = default
        self.frames = []  # every request envelope seen, in order
        self.task = asyncio.get_event_loop().create_task(self._run())

    async def _run(self):
        frames = FrameReader()
        while True:
            chunk = await self.reader.read(1 << 16)
            if not chunk:
                return
            for env in frames.feed(chunk):
                self.frames.append(env)
                action = self.script.get(len(self.frames), self.default)
                rid = env.payload.get("id")
                if action == "drop":
                    continue
                if action == "ok":
                    reply = {"id": rid, "ok": True, "echo": env.payload.get("op")}
                elif action == "busy":
                    reply = {
                        "id": rid,
                        "ok": False,
                        "busy": True,
                        "error": "busy: broker inbox full",
                        "retry_after": 0.01,
                    }
                else:
                    reply = {"id": rid, "ok": False, "error": "kaboom"}
                self.writer.write(
                    encode_frame(BROKER_ENDPOINT, env.src, reply)
                )

    async def close(self):
        self.task.cancel()
        await asyncio.gather(self.task, return_exceptions=True)
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _client_pair(script, default="ok", **policy):
    left, right = socket.socketpair()
    c_reader, c_writer = await asyncio.open_connection(sock=left)
    b_reader, b_writer = await asyncio.open_connection(sock=right)
    server = _ScriptedBroker(b_reader, b_writer, script, default)
    client = DLPTClient(c_reader, c_writer, "@client-test", **policy)
    return client, server


class TestClientPolicy:
    def test_default_policy_is_bare(self):
        async def body():
            client, server = await _client_pair({})
            try:
                assert client.timeout is None and client.retries == 0
                reply = await client.info()
                assert reply["ok"] and reply["echo"] == "info"
                assert len(server.frames) == 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_busy_reply_without_retries_raises(self):
        async def body():
            client, server = await _client_pair({1: "busy"})
            try:
                with pytest.raises(DLPTClientBusy) as err:
                    await client.info()
                assert err.value.retry_after == 0.01
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_busy_then_served_on_retry(self):
        async def body():
            client, server = await _client_pair(
                {1: "busy", 2: "busy"}, retries=3, backoff=0.001
            )
            try:
                reply = await client.info()
                assert reply["ok"]
                assert client.busy_rejections == 2
                # Every attempt reused the same correlation id.
                rids = {f.payload["id"] for f in server.frames}
                assert len(server.frames) == 3 and len(rids) == 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_busy_retries_exhausted_raises_busy(self):
        async def body():
            client, server = await _client_pair(
                {}, default="busy", retries=2, backoff=0.001
            )
            try:
                with pytest.raises(DLPTClientBusy):
                    await client.info()
                assert len(server.frames) == 3  # 1 attempt + 2 retries
                assert client.busy_rejections == 3
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_timeout_retries_same_correlation_id(self):
        async def body():
            client, server = await _client_pair(
                {1: "drop"}, timeout=0.05, retries=2
            )
            try:
                reply = await client.info()
                assert reply["ok"]
                assert client.timeouts == 1
                rids = {f.payload["id"] for f in server.frames}
                assert len(server.frames) == 2 and len(rids) == 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_timeout_exhausted_raises_timeout(self):
        async def body():
            client, server = await _client_pair(
                {}, default="drop", timeout=0.02, retries=1
            )
            try:
                with pytest.raises(DLPTClientTimeout, match="timed out"):
                    await client.info()
                assert len(server.frames) == 2
                assert client.timeouts == 2
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_definitive_error_is_not_retried(self):
        async def body():
            client, server = await _client_pair(
                {1: "error"}, timeout=1.0, retries=5
            )
            try:
                with pytest.raises(DLPTClientError, match="kaboom"):
                    await client.info()
                assert len(server.frames) == 1  # no retry on a real error
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_late_original_reply_settles_the_retry(self):
        """A reply that arrives after the timeout fired (the 'original'
        finally answered) settles the in-flight retried attempt: same
        correlation id, one result, no crash."""

        async def body():
            client, server = await _client_pair(
                {1: "drop", 2: "ok"}, timeout=0.05, retries=3
            )
            try:
                reply = await client.info()
                assert reply["ok"]
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())


@pytest.mark.net
class TestFloodOverSocket:
    """The acceptance flood: more concurrent RPCs than the inbox admits,
    against a real served cluster over a Unix socket."""

    def test_bounded_inbox_and_no_lost_rpcs(self):
        async def body():
            limit = 8
            transport, engine, broker = await start_cluster(
                4, inbox_limit=limit, retry_after=0.01
            )
            bare = await DLPTClient.connect(transport.address)
            resilient = await DLPTClient.connect(
                transport.address, timeout=5.0, retries=50, backoff=0.01
            )
            try:
                # Seed the tree so discovers have an entry node.
                assert (await bare.register("seed"))["ok"]
                # A bare client floods: every RPC either resolves or fails
                # with an *explicit* busy error — none hang, none vanish.
                flood = [bare.discover(f"k{i}") for i in range(64)]
                settled = await asyncio.gather(*flood, return_exceptions=True)
                served = [r for r in settled if isinstance(r, dict)]
                bounced = [r for r in settled if isinstance(r, DLPTClientBusy)]
                assert len(served) + len(bounced) == 64
                assert len(bounced) == broker.requests_rejected > 0
                assert broker.max_pending <= limit
                # A resilient client flooding the same broker loses nothing:
                # busy replies are retried until served.
                storm = [resilient.discover(f"r{i}") for i in range(32)]
                rows = await asyncio.gather(*storm)
                assert all(row["ok"] for row in rows)
                assert broker.max_pending <= limit
            finally:
                await bare.close()
                await resilient.close()
                await broker.close()
                await transport.close()

        asyncio.run(body())
