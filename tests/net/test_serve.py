"""``python -m repro serve``: cluster launcher and the --demo self-check."""

from __future__ import annotations

import asyncio

import pytest

from repro.experiments.cli import main as repro_main
from repro.net.serve import DEMO_KEYS, build_parser, peer_ids, run_demo, start_cluster

pytestmark = pytest.mark.asyncio


class TestPeerIds:
    def test_deterministic_unique_sorted(self):
        ids = peer_ids(8)
        assert ids == peer_ids(8)
        assert len(ids) == 8 == len(set(ids))
        assert ids == sorted(ids)

    @pytest.mark.parametrize("n", [1, 2, 26, 100])
    def test_scales_without_collisions(self, n):
        assert len(peer_ids(n)) == n


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.peers == 8 and not args.tcp and not args.demo

    def test_cli_rejects_empty_cluster(self):
        assert repro_main(["serve", "--peers", "0"]) == 2


@pytest.mark.net
class TestDemo:
    def _demo(self, **kwargs):
        async def body():
            transport, engine, broker = await start_cluster(8, **kwargs)
            try:
                lines = []
                summary = await run_demo(transport.address, out=lines.append)
                return engine, summary, lines
            finally:
                await broker.close()
                await transport.close()

        return asyncio.run(body())

    def test_demo_over_unix_socket(self):
        engine, summary, lines = self._demo()
        assert summary["registered"] == len(DEMO_KEYS)
        assert summary["found"] == len(DEMO_KEYS)
        assert summary["missed"] == 1
        assert summary["info"]["peers"] == 8
        # Every demo key landed on the peer the mapping rule names: the
        # lowest peer id >= the key (wrapped) — the paper's Def. 3 rule.
        ids = sorted(engine.peers)
        for key in DEMO_KEYS:
            expected = next((p for p in ids if p >= key), ids[0])
            assert engine.locator[key] == expected
        assert any("registered" in line for line in lines)

    def test_demo_over_tcp(self):
        engine, summary, lines = self._demo(tcp=True)
        assert summary["found"] == len(DEMO_KEYS) and summary["missed"] == 1

    def test_serve_demo_cli_exit_code(self):
        """The acceptance command itself: python -m repro serve --demo."""
        assert repro_main(["serve", "--peers", "8", "--demo"]) == 0
