"""``python -m repro serve``: cluster launcher and the --demo self-check."""

from __future__ import annotations

import asyncio

import pytest

from repro.experiments.cli import main as repro_main
from repro.net.bootstrap import RegistryJournal
from repro.net.serve import (
    DEMO_KEYS,
    build_parser,
    peer_ids,
    run_demo,
    serve,
    start_cluster,
    start_multiprocess_cluster,
)

pytestmark = pytest.mark.asyncio


class TestPeerIds:
    def test_deterministic_unique_sorted(self):
        ids = peer_ids(8)
        assert ids == peer_ids(8)
        assert len(ids) == 8 == len(set(ids))
        assert ids == sorted(ids)

    @pytest.mark.parametrize("n", [1, 2, 26, 100])
    def test_scales_without_collisions(self, n):
        assert len(peer_ids(n)) == n


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.peers == 8 and not args.tcp and not args.demo
        assert args.processes == 1 and args.journal is None
        assert args.chaos is None and not args.supervise

    def test_cli_rejects_empty_cluster(self):
        assert repro_main(["serve", "--peers", "0"]) == 2

    def test_cli_rejects_zero_processes(self):
        assert repro_main(["serve", "--processes", "0"]) == 2

    def test_cli_rejects_malformed_chaos_spec(self):
        """A bad --chaos spec fails at argument time (exit 2), before any
        socket is bound."""
        assert repro_main(["serve", "--chaos", "bogus:1"]) == 2
        assert repro_main(["serve", "--chaos", "drop:1.5"]) == 2

    @pytest.mark.net
    def test_supervise_without_processes_warns_and_is_ignored(self, tmp_path):
        args = build_parser().parse_args(
            ["--peers", "2", "--supervise", "--demo",
             "--path", str(tmp_path / "s.sock")]
        )
        lines = []
        rc = asyncio.run(serve(args, out=lines.append))
        assert rc == 0
        assert any("--supervise needs --processes" in line for line in lines)


class TestBindFailure:
    """The bugfix: bind failures exit non-zero with a one-line error."""

    def test_stale_unix_socket_exits_one_with_hint(self, tmp_path):
        stale = tmp_path / "stale.sock"
        stale.touch()
        args = build_parser().parse_args(["--peers", "2", "--path", str(stale)])
        lines = []
        rc = asyncio.run(serve(args, out=lines.append))
        assert rc == 1
        assert len(lines) == 1 and "cannot bind" in lines[0]
        assert "stale socket" in lines[0]

    def test_unwritable_path_exits_one(self, tmp_path):
        args = build_parser().parse_args(
            ["--peers", "2", "--path", str(tmp_path / "no-such-dir" / "x.sock")]
        )
        lines = []
        rc = asyncio.run(serve(args, out=lines.append))
        assert rc == 1 and "cannot bind" in lines[0]

    @pytest.mark.net
    def test_tcp_port_in_use_exits_one(self):
        import socket

        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        port = holder.getsockname()[1]
        try:
            args = build_parser().parse_args(
                ["--peers", "2", "--tcp", "--port", str(port)]
            )
            lines = []
            rc = asyncio.run(serve(args, out=lines.append))
            assert rc == 1 and "cannot bind" in lines[0]
        finally:
            holder.close()


@pytest.mark.net
class TestSocketLifecycle:
    def test_clean_shutdown_unlinks_user_supplied_socket(self, tmp_path):
        path = tmp_path / "dlpt.sock"

        async def body():
            transport, engine, broker = await start_cluster(2, path=str(path))
            assert path.exists()
            await broker.close()
            await transport.close()

        asyncio.run(body())
        assert not path.exists()


@pytest.mark.net
class TestJournalRecovery:
    def test_restart_readmits_journaled_membership(self, tmp_path):
        journal_path = str(tmp_path / "registry.jsonl")

        async def run_once(n_peers):
            journal = RegistryJournal(journal_path)
            transport, engine, broker = await start_cluster(
                n_peers, journal=journal
            )
            try:
                return sorted(engine.peers)
            finally:
                await broker.close()
                await transport.close()

        first = asyncio.run(run_once(4))
        assert first == peer_ids(4)
        # Restart asking for a different size: the journal wins.
        second = asyncio.run(run_once(9))
        assert second == first
        # Idempotent recovery: re-admission did not grow the journal.
        assert len(RegistryJournal(journal_path).replay()) == 4

    def test_restart_after_crash_readmits_the_adopted_membership(self, tmp_path):
        """Journal hardening: a supervisor-journaled ``crash`` event
        subtracts the dead worker's peers, so a restart re-admits the
        post-adoption ring — never a ghost of the crashed peer."""
        journal_path = str(tmp_path / "registry.jsonl")
        journal = RegistryJournal(journal_path)
        for pid in ("pa", "pd", "pg", "pj"):
            journal.record("join", pid, 10)
        journal.record("crash", "pd")
        journal.close()

        async def restart():
            restart_journal = RegistryJournal(journal_path)
            transport, engine, broker = await start_cluster(
                8, journal=restart_journal
            )
            try:
                return sorted(engine.peers)
            finally:
                await broker.close()
                await transport.close()

        assert asyncio.run(restart()) == ["pa", "pg", "pj"]


@pytest.mark.net
class TestDemo:
    def _demo(self, **kwargs):
        async def body():
            transport, engine, broker = await start_cluster(8, **kwargs)
            try:
                lines = []
                summary = await run_demo(transport.address, out=lines.append)
                return engine, summary, lines
            finally:
                await broker.close()
                await transport.close()

        return asyncio.run(body())

    def test_demo_over_unix_socket(self):
        engine, summary, lines = self._demo()
        assert summary["registered"] == len(DEMO_KEYS)
        assert summary["found"] == len(DEMO_KEYS)
        assert summary["missed"] == 1
        assert summary["info"]["peers"] == 8
        # Every demo key landed on the peer the mapping rule names: the
        # lowest peer id >= the key (wrapped) — the paper's Def. 3 rule.
        ids = sorted(engine.peers)
        for key in DEMO_KEYS:
            expected = next((p for p in ids if p >= key), ids[0])
            assert engine.locator[key] == expected
        assert any("registered" in line for line in lines)

    def test_demo_over_tcp(self):
        engine, summary, lines = self._demo(tcp=True)
        assert summary["found"] == len(DEMO_KEYS) and summary["missed"] == 1

    def test_serve_demo_cli_exit_code(self):
        """The acceptance command itself: python -m repro serve --demo."""
        assert repro_main(["serve", "--peers", "8", "--demo"]) == 0


@pytest.mark.net
class TestMultiProcessServe:
    """``--processes N``: the same client-visible surface, served by a
    ring spread over worker processes."""

    def test_demo_over_two_processes(self):
        async def body():
            transport, cluster, broker = await start_multiprocess_cluster(
                6, processes=2
            )
            try:
                lines = []
                summary = await run_demo(transport.address, out=lines.append)
                assert summary["registered"] == len(DEMO_KEYS)
                assert summary["found"] == len(DEMO_KEYS)
                assert summary["missed"] == 1
                assert summary["info"]["peers"] == 6
                assert len(cluster.members) == 6
            finally:
                await broker.close()
                await transport.close()
                await cluster.close()

        asyncio.run(body())

    def test_serve_demo_cli_two_processes(self):
        assert (
            repro_main(
                ["serve", "--peers", "6", "--processes", "2", "--demo"]
            )
            == 0
        )


@pytest.mark.net
class TestChaosServing:
    """``--chaos`` / ``--supervise``: serving stays correct under
    outcome-preserving fault injection."""

    _PRESERVING = "delay:0.3:max=0.002+reorder:0.2+seed=5"

    def test_demo_survives_preserving_chaos_single_process(self):
        async def body():
            transport, engine, broker = await start_cluster(
                8, chaos=self._PRESERVING
            )
            try:
                summary = await run_demo(transport.address, out=lambda _: None)
                assert summary["found"] == len(DEMO_KEYS)
                assert summary["missed"] == 1
                # Chaos actually fired on the serving path...
                assert transport.chaos_delayed + transport.chaos_reordered > 0
                # ...and the wrapper's ledger still balances.
                await transport.drain()
                assert transport.messages_sent == (
                    transport.messages_delivered
                    + transport.messages_dropped
                    + transport.messages_dead_lettered
                )
            finally:
                await broker.close()
                await transport.close()

        asyncio.run(body())

    def test_serve_demo_cli_chaotic_supervised_two_processes(self):
        assert (
            repro_main(
                [
                    "serve", "--peers", "6", "--processes", "2",
                    "--chaos", self._PRESERVING, "--supervise", "--demo",
                ]
            )
            == 0
        )
