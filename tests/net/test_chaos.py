"""Chaos engineering: the ``chaos:`` spec grammar, the fault-injecting
:class:`~repro.net.chaos.ChaosTransport`, and the chaos conformance
obligation.

Tier-1 covers the spec surface (parsing, errors, registry integration,
signature hashing), the decorator's counter invariant under every fault
mode on the deterministic transports, and the oracle-equality proof for
outcome-preserving chaos (delay/reorder): the crash-storm conformance
trace replayed through a chaos-wrapped loopback transport must produce
the *same* canonical stream as the pristine simulator.  The
``net``-marked tests run the same differential through the two-process
ring, a kill-chaos run over real peer-to-peer sockets, and the
no-lost-ack acceptance: a resilient client registering through a broker
whose replies are being dropped by chaos never loses an acknowledged
registration.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.dlpt import messages as m
from repro.dlpt.protocol import ProtocolEngine
from repro.net.asyncio_transport import AsyncioTransport, LoopbackAsyncioTransport
from repro.net.bootstrap import Broker
from repro.net.chaos import (
    ChaosPlan,
    ChaosSpecError,
    ChaosTransport,
    PartitionWindow,
    parse_chaos,
)
from repro.net.client import DLPTClient
from repro.net.conformance import (
    diff_streams,
    record_conformance_trace,
    replay_trace,
    replay_trace_multiprocess,
)
from repro.net.p2p import PeerAsyncioTransport
from repro.net.transport import SimTransport
from repro.util.specs import SpecError, parse_spec, spec_hash

pytestmark = pytest.mark.asyncio


def _msg(n: int) -> m.DataInsertion:
    return m.DataInsertion(node="a", key="ab", datum=n)


class TestChaosSpec:
    def test_full_grammar_parses(self):
        plan = parse_chaos(
            "drop:0.05+delay:0.3:max=0.01+dup:0.1+reorder:0.2+kill:0.15"
            "+crash_storm:0.02:start=2:end=4+partition:2@4:fraction=0.75+seed=7"
        )
        assert plan.drop == 0.05
        assert plan.delay == 0.3 and plan.delay_max == 0.01
        assert plan.dup == 0.1 and plan.reorder == 0.2 and plan.kill == 0.15
        assert plan.crash == 0.02
        assert plan.crash_start == 2.0 and plan.crash_end == 4.0
        assert plan.partitions == (
            PartitionWindow(duration=2.0, at=4.0, fraction=0.75),
        )
        assert plan.seed == 7
        assert plan.active()

    def test_seed_as_clause_option(self):
        assert parse_chaos("drop:0.1:seed=13").seed == 13

    def test_dict_and_plan_forms(self):
        plan = parse_chaos({"drop": 0.2, "partitions": [{"duration": 1, "at": 3}]})
        assert plan.drop == 0.2
        assert plan.partitions[0].fraction == 0.5  # the default
        assert parse_chaos(plan) is plan

    def test_defaults_are_inert(self):
        assert not ChaosPlan().active()

    @pytest.mark.parametrize(
        "spec, needle",
        [
            ("explode:0.5", "unknown fault kind"),
            ("drop:1.5", "outside"),
            ("drop:much", "not a number"),
            ("drop", "needs a probability"),
            ("delay:0.5:max=0", "must be > 0"),
            ("partition:5", "DURATION@AT"),
            ("drop:0.1:color=red", "unknown option"),
            ("drop:0.1++dup:0.1", "empty clause"),
            ("seed=x", "integer"),
            ("rate=1", "unknown plan option"),
        ],
    )
    def test_malformed_specs_fail_loudly(self, spec, needle):
        with pytest.raises(ChaosSpecError, match=needle):
            parse_chaos(spec)

    def test_non_string_value_is_rejected(self):
        with pytest.raises(ChaosSpecError):
            parse_chaos(42)
        with pytest.raises(ChaosSpecError):
            parse_chaos("   ")

    def test_registry_integration(self):
        """``chaos`` is a registered spec kind: the same ``parse_spec`` /
        ``spec_hash`` surface every other compact spec uses."""
        plan = parse_spec("chaos", "drop:0.1+seed=3")
        assert isinstance(plan, ChaosPlan)
        # ChaosSpecError derives from SpecError like every spec surface.
        with pytest.raises(SpecError):
            parse_spec("chaos", "bogus:1")

    def test_spec_hash_is_stable_and_seed_sensitive(self):
        a = spec_hash("chaos", parse_spec("chaos", "drop:0.1+seed=3"))
        b = spec_hash("chaos", parse_spec("chaos", "drop:0.1+seed=3"))
        c = spec_hash("chaos", parse_spec("chaos", "drop:0.1+seed=4"))
        assert a == b != c


class TestChaosTransport:
    """The decorator's contract on the deterministic transports."""

    @staticmethod
    async def _flood(inner, plan, n=200, **kwargs):
        t = ChaosTransport(inner, plan, **kwargs)
        await t.start()
        got = []
        t.register("b", lambda env: got.append(env.payload.datum))
        for i in range(n):
            t.send("a", "b", _msg(i))
        await t.drain()
        return t, got

    @pytest.mark.parametrize(
        "inner_factory", [SimTransport, LoopbackAsyncioTransport],
        ids=["sim", "loopback"],
    )
    def test_counter_invariant_under_mixed_faults(self, inner_factory):
        async def body():
            t, got = await self._flood(
                inner_factory(), "drop:0.3+dup:0.2+delay:0.5:max=0.01+seed=3"
            )
            assert t.chaos_dropped > 0
            assert t.chaos_duplicated > 0
            assert t.chaos_delayed > 0
            # The invariant chaos must never break.
            assert t.messages_sent == (
                t.messages_delivered
                + t.messages_dropped
                + t.messages_dead_lettered
            )
            assert t.in_flight == 0
            # Everything not dropped arrived (duplicates included).
            assert len(got) == 200 - t.chaos_dropped + t.chaos_duplicated
            # Per-pair FIFO survives delays: the stream is nondecreasing
            # (duplicates ride directly behind their original).
            assert got == sorted(got)
            await t.close()

        asyncio.run(body())

    def test_same_seed_same_fates(self):
        async def runs():
            plan = "drop:0.25+dup:0.1+delay:0.4:max=0.005+seed=17"
            a, got_a = await self._flood(SimTransport(), plan)
            b, got_b = await self._flood(SimTransport(), plan)
            assert got_a == got_b
            assert (a.chaos_dropped, a.chaos_duplicated, a.chaos_delayed) == (
                b.chaos_dropped, b.chaos_duplicated, b.chaos_delayed
            )
            await a.close()
            await b.close()

        asyncio.run(runs())

    def test_disabled_chaos_is_a_passthrough(self):
        async def body():
            t = ChaosTransport(SimTransport(), "drop:1.0")
            t.enabled = False
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env.payload.datum))
            for i in range(10):
                t.send("a", "b", _msg(i))
            await t.drain()
            assert got == list(range(10))
            assert t.chaos_dropped == 0
            await t.close()

        asyncio.run(body())

    def test_only_predicate_scopes_the_blast_radius(self):
        async def body():
            t = ChaosTransport(
                SimTransport(), "drop:1.0", only=lambda s, d: d == "victim"
            )
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env.payload.datum))
            t.register("victim", lambda env: got.append("never"))
            t.send("a", "b", _msg(1))
            t.send("a", "victim", _msg(2))
            await t.drain()
            assert got == [1]
            assert t.chaos_dropped == 1
            await t.close()

        asyncio.run(body())

    def test_control_plane_is_exempt(self):
        async def body():
            t = ChaosTransport(SimTransport(), "drop:1.0")
            await t.start()
            got = []
            t.register("@ctl-0", lambda env: got.append(env.payload))
            t.send("a", "@ctl-0", {"op": "ping"})
            await t.drain()
            assert got == [{"op": "ping"}]
            assert t.chaos_dropped == 0
            await t.close()

        asyncio.run(body())

    def test_crash_storm_fail_stops_an_endpoint(self):
        async def body():
            t = ChaosTransport(SimTransport(), "crash_storm:1.0+seed=1")
            await t.start()
            t.register("@sink", lambda env: None)
            t.register("px", lambda env: None)  # the only crashable name
            t.send("a", "@sink", _msg(1))
            await t.drain()
            assert t.crashed == ["px"]
            assert not t.is_registered("px")
            # The crash is fail-stop: traffic to the victim dead-letters.
            t.send("a", "px", _msg(2))
            await t.drain()
            assert t.messages_dead_lettered == 1
            assert t.messages_sent == (
                t.messages_delivered
                + t.messages_dropped
                + t.messages_dead_lettered
            )
            await t.close()

        asyncio.run(body())

    def test_partition_window_blocks_then_heals(self):
        async def body():
            t = ChaosTransport(SimTransport(), "partition:5@0:fraction=1.0")
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env.payload.datum))
            for i in range(5):  # the sim clock sits inside the window
                t.send("a", "b", _msg(i))
            await t.drain()
            assert got == [] and t.chaos_dropped == 5
            # Advance the sim clock past the window: the partition heals.
            t.sim.schedule(10.0, lambda: None, label="advance")
            t.sim.run_until_idle()
            t.send("a", "b", _msg(99))
            await t.drain()
            assert got == [99]
            await t.close()

        asyncio.run(body())

    def test_partition_fraction_is_deterministic_per_pair(self):
        async def body():
            t = ChaosTransport(SimTransport(), "partition:100@0:fraction=0.5+seed=9")
            await t.start()
            t.register("b", lambda env: None)
            for _ in range(10):
                t.send("a", "b", _msg(0))
            await t.drain()
            # A pair is in the blocked fraction or it isn't — never flappy.
            assert t.chaos_dropped in (0, 10)
            await t.close()

        asyncio.run(body())

    def test_reset_accounting_starts_a_fresh_epoch(self):
        async def body():
            t, got = await self._flood(
                SimTransport(), "drop:0.5+seed=2", n=50
            )
            assert t.chaos_dropped > 0
            t.reset_accounting()
            assert t.chaos_dropped == 0
            assert t._pending_held == 0 and t.in_flight == t.inner.in_flight
            await t.close()

        asyncio.run(body())

    def test_close_counts_held_messages_dropped(self):
        async def body():
            t = ChaosTransport(LoopbackAsyncioTransport(), "delay:1.0:max=30.0")
            await t.start()
            t.register("b", lambda env: None)
            for i in range(3):
                t.send("a", "b", _msg(i))
            assert t.in_flight > 0
            await t.close()
            assert t._pending_held == 0
            assert t.chaos_dropped + t.messages_delivered >= 3

        asyncio.run(body())

    def test_delegation_reaches_the_inner_transport(self):
        async def body():
            inner = SimTransport()
            t = ChaosTransport(inner, "drop:0.1")
            await t.start()
            assert t.now() == inner.now()
            assert t.sim is inner.sim  # attribute fallthrough
            await t.close()

        asyncio.run(body())


def _small_trace(**overrides):
    params = dict(
        n_peers=12,
        n_keys=40,
        growth_units=2,
        total_units=5,
        load_fraction=0.05,
        faults="crash_storm:0.05:start=2:end=4",
        seed=1789,
    )
    params.update(overrides)
    return record_conformance_trace(**params)


#: Outcome-preserving chaos: delay and reorder shuffle schedules but
#: deliver everything, so replays through them must stay oracle-equal.
_PRESERVING = "delay:0.4:max=0.002+reorder:0.3+seed=11"


class TestChaosConformance:
    def test_preserving_chaos_is_oracle_equal(self):
        """The crash-storm conformance trace through a chaos-wrapped
        loopback transport yields the same canonical stream as the
        pristine simulator — chaos scheduling is invisible to outcomes."""
        trace = _small_trace()
        oracle = asyncio.run(replay_trace(trace, SimTransport()))
        chaotic_t = ChaosTransport(LoopbackAsyncioTransport(), _PRESERVING)
        chaotic = asyncio.run(replay_trace(trace, chaotic_t))
        assert diff_streams(oracle.outcomes, chaotic.outcomes) == []
        assert chaotic_t.chaos_delayed + chaotic_t.chaos_reordered > 0
        assert chaotic_t.chaos_dropped == 0
        # Zero loss: every message the replay sent was delivered or (for
        # the trace's own crashed peers) explicitly dead-lettered.
        assert chaotic.messages_sent == (
            chaotic.messages_delivered + chaotic.messages_dead_lettered
        )

    def test_chaotic_replay_is_deterministic(self):
        trace = _small_trace()
        first = asyncio.run(
            replay_trace(trace, ChaosTransport(LoopbackAsyncioTransport(), _PRESERVING))
        )
        second = asyncio.run(
            replay_trace(trace, ChaosTransport(LoopbackAsyncioTransport(), _PRESERVING))
        )
        assert first.outcomes == second.outcomes


@pytest.mark.net
class TestChaosLive:
    def test_multiprocess_chaos_stream_matches_oracle(self):
        """The two-process ring under outcome-preserving chaos (every
        worker transport wrapped, per-group derived seeds) still replays
        the crash-storm trace to the oracle's canonical stream."""
        trace = _small_trace()
        oracle = asyncio.run(replay_trace(trace, SimTransport()))
        multi = asyncio.run(
            replay_trace_multiprocess(
                trace, processes=2, chaos="delay:0.3:max=0.002+reorder:0.2+seed=5"
            )
        )
        assert diff_streams(oracle.outcomes, multi.outcomes) == []
        assert multi.messages_sent == (
            multi.messages_delivered + multi.messages_dead_lettered
        )

    def test_kill_chaos_severed_links_redial(self):
        async def body():
            a = ChaosTransport(PeerAsyncioTransport(), "kill:1.0+seed=1")
            b = PeerAsyncioTransport()
            await a.start()
            await b.start()
            a.set_resolve(lambda endpoint: b.address)
            got = []
            b.register("remote", lambda env: got.append(env.payload.datum))
            n = 8
            for i in range(n):
                a.send("local", "remote", _msg(i))
                # Let the frame settle before the next send kills the link.
                deadline = asyncio.get_running_loop().time() + 5.0
                while a.in_flight > 0:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.005)
            assert a.chaos_kills >= 1
            assert a.links_dialed >= 2  # severed links were re-dialed
            # Kills drop, they never corrupt: whatever arrived is an
            # in-order subsequence, nothing was recorded as an error, and
            # the accounting balances.
            assert got == sorted(got) and set(got) <= set(range(n))
            assert a.errors == []
            assert a.messages_sent == (
                a.messages_delivered + a.messages_dropped + a.messages_dead_lettered
            )
            await a.close()
            await b.close()

        asyncio.run(body())

    def test_no_acked_registration_is_lost_under_reply_chaos(self):
        """The no-lost-ack acceptance: chaos drops a quarter of the
        broker's replies to clients (requests and the protocol plane stay
        healthy, scoped via ``only``), a resilient client retries every
        silence under the same correlation id, and at the end *every*
        registration the client saw acknowledged is discoverable — an ack,
        once observed, is never lost (r >= 1)."""

        async def body():
            inner = AsyncioTransport()
            await inner.start()
            transport = ChaosTransport(
                inner,
                "drop:0.25+seed=23",
                only=lambda s, d: isinstance(d, str) and d.startswith("@client-"),
            )
            engine = ProtocolEngine(transport=transport)
            broker = Broker(engine, transport)
            await broker.start()
            engine.bootstrap_peer("pm", 10)
            await transport.drain()
            client = await DLPTClient.connect(
                inner.address, timeout=0.25, retries=8, backoff=0.01
            )
            try:
                keys = [f"k{i:02d}" for i in range(20)]
                acked = []
                for key in keys:
                    reply = await client.register(key)
                    assert reply["ok"]
                    acked.append(key)
                assert len(acked) == 20
                # Chaos must actually have fired for this to prove much.
                assert transport.chaos_dropped > 0
                for key in acked:
                    row = await client.discover(key)
                    assert row["ok"] and row["found"], f"acked {key!r} was lost"
                assert client.timeouts > 0  # the retries did the riding
            finally:
                await client.close()
                await broker.close()
                await transport.drain()
                assert transport.messages_sent == (
                    transport.messages_delivered
                    + transport.messages_dropped
                    + transport.messages_dead_lettered
                )
                await transport.close()

        asyncio.run(body())
