"""The proof obligation: trace replay is transport-conformant.

The same recorded ``repro-trace/1`` workload is replayed through the
protocol engine on the discrete-event transport and on a live asyncio
transport; the canonicalised outcome streams must be *equal*.  Tier-1
runs the differential against the deterministic loopback transport on a
small trace; the ``net``-marked tests run the acceptance-scale traces
(200 peers, uniform and zipf request mixes, a crash storm) against real
sockets, plus a crash/restart scenario on a live peer.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.dlpt.protocol import ProtocolEngine
from repro.net.asyncio_transport import AsyncioTransport, LoopbackAsyncioTransport
from repro.net.conformance import (
    ConformanceError,
    crash_peer_live,
    diff_streams,
    record_conformance_trace,
    replay_trace,
    replay_trace_multiprocess,
)
from repro.net.transport import SimTransport
from repro.workloads.traces import TraceUnit, WorkloadTrace

pytestmark = pytest.mark.asyncio


def _small_trace(**overrides):
    params = dict(
        n_peers=12,
        n_keys=40,
        growth_units=2,
        total_units=5,
        load_fraction=0.05,
        faults="crash_storm:0.05:start=2:end=4",
        seed=1789,
    )
    params.update(overrides)
    return record_conformance_trace(**params)


class TestTier1Conformance:
    def test_sim_and_loopback_streams_are_equal(self):
        trace = _small_trace()
        sim = asyncio.run(replay_trace(trace, SimTransport()))
        loop = asyncio.run(replay_trace(trace, LoopbackAsyncioTransport()))
        assert diff_streams(sim.outcomes, loop.outcomes) == []
        # Same protocol, same inputs, same delivery semantics (zero-latency
        # global FIFO): even the message totals agree.
        assert sim.messages_sent == loop.messages_sent
        assert sim.messages_delivered == loop.messages_delivered

    def test_replay_is_deterministic(self):
        trace = _small_trace()
        first = asyncio.run(replay_trace(trace, LoopbackAsyncioTransport()))
        second = asyncio.run(replay_trace(trace, LoopbackAsyncioTransport()))
        assert first.outcomes == second.outcomes

    def test_trace_exercises_the_interesting_axes(self):
        """Guard the fixture itself: a conformance pass over a trace with
        no churn, faults or requests would prove nothing."""
        trace = _small_trace()
        report = asyncio.run(replay_trace(trace, SimTransport()))
        assert sum(o.crashes for o in report.outcomes) >= 1
        assert sum(o.joins for o in report.outcomes) >= 1
        assert sum(len(o.requests) for o in report.outcomes) >= 10
        assert any(o.keys for o in report.outcomes)

    def test_query_traces_conform_sim_vs_loopback(self):
        """Traces carrying set-query events (prefix/range/exact scans)
        replay to equal outcome streams — including the per-query result
        sets and hop counts folded into each unit's outcome."""
        trace = _small_trace(queries="mixed:n=2")
        assert any(u.queries for u in trace.units)
        sim = asyncio.run(replay_trace(trace, SimTransport()))
        loop = asyncio.run(replay_trace(trace, LoopbackAsyncioTransport()))
        assert diff_streams(sim.outcomes, loop.outcomes) == []
        served = [q for o in sim.outcomes for q in o.queries]
        assert served, "the fixture must actually exercise the query path"
        assert any(q[3] for q in served), "some query must match keys"

    def test_diff_streams_flags_query_divergence(self):
        trace = _small_trace(queries="mixed:n=2")
        a = asyncio.run(replay_trace(trace, SimTransport())).outcomes
        b = list(a)
        target = next(i for i, o in enumerate(b) if o.queries)
        broken = b[target]
        q = broken.queries[0]
        b[target] = type(broken)(
            unit=broken.unit,
            n_peers=broken.n_peers,
            n_nodes=broken.n_nodes,
            keys=broken.keys,
            requests=broken.requests,
            joins=broken.joins,
            leaves=broken.leaves,
            crashes=broken.crashes,
            queries=((q[0], q[1], q[2], q[3] + ("phantom",), q[4]),)
            + broken.queries[1:],
        )
        problems = diff_streams(a, b)
        assert problems and "query" in problems[0]

    def test_diff_streams_pinpoints_divergence(self):
        trace = _small_trace()
        a = asyncio.run(replay_trace(trace, SimTransport())).outcomes
        b = list(a)
        broken = b[2]
        b[2] = type(broken)(
            unit=broken.unit,
            n_peers=broken.n_peers + 1,
            n_nodes=broken.n_nodes,
            keys=broken.keys,
            requests=broken.requests,
            joins=broken.joins,
            leaves=broken.leaves,
            crashes=broken.crashes,
        )
        problems = diff_streams(a, b)
        assert problems and "unit 2" in problems[0] and "n_peers" in problems[0]

    def test_partition_faults_are_rejected(self):
        trace = WorkloadTrace(
            seed=1,
            meta={"n_bootstrap": 4},
            units=[TraceUnit(faults=[["partition", 0, 2, 1]])],
        )
        with pytest.raises(ConformanceError, match="partition"):
            asyncio.run(replay_trace(trace, SimTransport()))

    def test_bootstrap_size_is_required(self):
        trace = WorkloadTrace(seed=1, units=[TraceUnit()])
        with pytest.raises(ConformanceError, match="n_bootstrap"):
            asyncio.run(replay_trace(trace, SimTransport()))


@pytest.mark.net
class TestLiveConformance:
    """Acceptance scale: 200 bootstrap peers, crash storm, real sockets."""

    @pytest.mark.parametrize("workload", ["uniform", "zipf"])
    def test_live_socket_stream_matches_sim(self, workload):
        trace = record_conformance_trace(workload=workload)
        sim = asyncio.run(replay_trace(trace, SimTransport()))
        live = asyncio.run(replay_trace(trace, AsyncioTransport()))
        assert diff_streams(sim.outcomes, live.outcomes) == []
        assert sum(o.crashes for o in live.outcomes) >= 1
        assert sum(len(o.requests) for o in live.outcomes) >= 200
        assert live.messages_sent == (
            live.messages_delivered + live.messages_dead_lettered
        )

    @pytest.mark.parametrize("workload", ["uniform", "zipf"])
    def test_multiprocess_stream_matches_sim(self, workload):
        """The third leg of the differential: the same trace through
        engine groups in separate OS processes, protocol messages
        crossing peer-to-peer sockets."""
        trace = record_conformance_trace(workload=workload)
        sim = asyncio.run(replay_trace(trace, SimTransport()))
        multi = asyncio.run(replay_trace_multiprocess(trace, processes=2))
        assert diff_streams(sim.outcomes, multi.outcomes) == []
        assert sum(o.crashes for o in multi.outcomes) >= 1
        # Summed per-group counters still conserve every message (the
        # totals exceed the single-engine replays by exactly the locator
        # replication traffic, so only the invariant is comparable).
        assert multi.messages_sent == (
            multi.messages_delivered + multi.messages_dead_lettered
        )
        assert multi.messages_sent > sim.messages_sent


def _crash_restart_scenario(transport):
    """Crash a key-hosting peer mid-run, then restart it (same endpoint
    id), on any transport; returns the canonical final state."""

    async def body():
        await transport.start()
        engine = ProtocolEngine(transport=transport)
        ids = ["pa", "pc", "pe", "pg", "pi", "pk"]
        engine.bootstrap_peer(ids[0], 10)
        await transport.drain()
        for pid in ids[1:]:
            engine.join_peer(pid, 10, seed=min(engine.peers))
            await transport.drain()
        keys = ["ca", "cab", "ga", "gab", "ia", "iab"]
        for key in keys:
            engine.insert_data(key, via=min(engine.locator, default=None))
            await transport.drain()

        victim = engine.locator["ga"]
        crash_peer_live(engine, transport, victim)
        await transport.drain()
        survived = engine.locator["ga"]

        # The victim restarts under its old endpoint id (re-registering
        # an endpoint replaces the dead handler per the contract).
        engine.join_peer(victim, 10, seed=min(engine.peers))
        await transport.drain()

        outcomes = []
        for key in keys:
            mark = len(engine.discovery_replies)
            engine.discover(key, via=min(engine.locator))
            await transport.drain()
            (reply,) = engine.discovery_replies[mark:]
            outcomes.append((key, reply.found, engine.locator.get(key)))
        engine.check_ring()
        await transport.close()
        return survived, victim, sorted(engine.peers), tuple(outcomes)

    return asyncio.run(body())


class TestCrashRestart:
    def test_loopback_matches_sim(self):
        sim = _crash_restart_scenario(SimTransport())
        loop = _crash_restart_scenario(LoopbackAsyncioTransport())
        assert sim == loop
        survived, victim, peers, outcomes = sim
        assert survived != victim and victim in peers
        assert all(found for _, found, _ in outcomes)

    @pytest.mark.net
    def test_live_socket_matches_sim(self):
        sim = _crash_restart_scenario(SimTransport())
        live = _crash_restart_scenario(AsyncioTransport())
        assert sim == live
