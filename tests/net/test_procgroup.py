"""Multi-process engine groups: placement, control plane, global drain.

Tier-1 covers the pure pieces (placement hash, endpoint resolver); the
``net``-marked tests spawn real worker processes and drive a ring spread
over peer-to-peer sockets through the full membership/data lifecycle,
asserting the per-group counter invariant and cluster-wide frame balance
at every quiescence point.
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.net.bootstrap import RegistryJournal
from repro.net.procgroup import (
    CLIENT_PREFIX,
    COORD_ENDPOINT,
    CTL_PREFIX,
    SYNC_PREFIX,
    ClusterError,
    ClusterRecovering,
    MultiProcessCluster,
    _make_resolver,
    group_of,
)
from repro.net.transport import TransportError

pytestmark = pytest.mark.asyncio


class TestPlacement:
    def test_group_of_is_stable_and_in_range(self):
        for n in (1, 2, 3, 8):
            for pid in ("pa", "zz", "abcd1234", ""):
                g = group_of(pid, n)
                assert 0 <= g < n
                assert g == group_of(pid, n)

    def test_single_group_owns_everything(self):
        assert group_of("anything", 1) == 0

    def test_resolver_maps_the_naming_scheme(self):
        groups = [("unix", "/g0"), ("unix", "/g1")]
        coord = ("unix", "/coord")
        resolve = _make_resolver(2, groups, coord)
        assert resolve(COORD_ENDPOINT) == coord
        assert resolve(f"{CTL_PREFIX}1") == groups[1]
        assert resolve(f"{SYNC_PREFIX}0") == groups[0]
        assert resolve(f"{CLIENT_PREFIX}1") == groups[1]
        assert resolve("pa") == groups[group_of("pa", 2)]

    def test_resolver_rejects_unmappable_endpoints(self):
        resolve = _make_resolver(2, [("unix", "/g0"), ("unix", "/g1")], None)
        assert resolve(f"{CTL_PREFIX}7") is None
        assert resolve(f"{CTL_PREFIX}x") is None
        assert resolve(123) is None
        assert resolve(COORD_ENDPOINT) is None

    def test_cluster_rejects_zero_processes(self):
        with pytest.raises(ValueError, match="processes"):
            MultiProcessCluster(processes=0)


def _assert_balanced(counters):
    """The acceptance invariant, per group and cluster-wide."""
    for c in counters:
        assert c["sent"] == c["delivered"] + c["dropped"] + c["dead_lettered"], c
        assert c["in_flight"] == 0
    assert sum(c["frames_out"] for c in counters) == (
        sum(c["frames_in"] for c in counters)
    )


@pytest.mark.net
class TestClusterLifecycle:
    def test_full_lifecycle_two_groups(self):
        async def body():
            cluster = MultiProcessCluster(processes=2)
            await cluster.start()
            try:
                peers = ["pa", "pd", "pg", "pj", "pm", "pq"]
                # The fixture must actually span both groups, or nothing
                # crosses a socket.
                assert len({group_of(p, 2) for p in peers}) == 2
                for pid in peers:
                    ring = await cluster.join(pid)
                assert ring["pred"] in peers and ring["succ"] in peers
                assert cluster.live_ids() == sorted(peers)

                record = await cluster.register("dgemm")
                assert record["key"] == "dgemm"
                # Def. 3 mapping rule: lowest live id >= the key, wrapped.
                assert record["host"] == "pa"
                await cluster.register("sgemm")

                hit = await cluster.discover("dgemm")
                assert hit["found"] and hit["host"] == "pa"
                assert hit["data"] == ["dgemm"]
                miss = await cluster.discover("zzz-no-such-key")
                assert not miss["found"]

                band = await cluster.search("range", "dgemm", "zz")
                assert band["keys"] == ["dgemm", "sgemm"]
                assert band["hops"] >= 1

                snap = await cluster.snapshot()
                assert snap["live"] == sorted(peers)
                assert snap["hosted"]["dgemm"] is True
                # Locator replication: every group holds the full table.
                assert len(set(snap["locator_sizes"])) == 1

                _assert_balanced(await cluster.counters())
            finally:
                await cluster.close()

        asyncio.run(body())

    def test_crash_adoption_across_groups(self):
        async def body():
            cluster = MultiProcessCluster(processes=2)
            await cluster.start()
            try:
                for pid in ("pa", "pd", "pg", "pj"):
                    await cluster.join(pid)
                await cluster.register("dgemm")
                victim = (await cluster.discover("dgemm"))["host"]
                assert victim == "pa"

                await cluster.crash(victim)
                assert victim not in cluster.live_ids()
                # r=1 successor replication: the key survives on the
                # successor.
                after = await cluster.discover("dgemm")
                assert after["found"] and after["host"] == "pd"

                _assert_balanced(await cluster.counters())
            finally:
                await cluster.close()

        asyncio.run(body())

    def test_leave_and_membership_errors(self):
        async def body():
            cluster = MultiProcessCluster(processes=2)
            await cluster.start()
            try:
                await cluster.join("pa")
                await cluster.join("pd")
                await cluster.leave("pd")
                assert cluster.live_ids() == ["pa"]
                with pytest.raises(ClusterError, match="not joined"):
                    await cluster.leave("pd")
                with pytest.raises(ClusterError, match="not joined"):
                    await cluster.crash("nobody")
            finally:
                await cluster.close()

        asyncio.run(body())

    def test_control_rpc_errors_surface_as_cluster_error(self):
        async def body():
            cluster = MultiProcessCluster(processes=1)
            await cluster.start()
            try:
                with pytest.raises(ClusterError):
                    await cluster.call(0, "no-such-op")
                # The worker survives a failed RPC: the next succeeds.
                counters = await cluster.counters()
                assert counters[0]["ok"]
            finally:
                await cluster.close()

        asyncio.run(body())

    def test_empty_tree_has_no_entry_node(self):
        async def body():
            cluster = MultiProcessCluster(processes=1)
            await cluster.start()
            try:
                with pytest.raises(ClusterError, match="no peers"):
                    await cluster.register("too-early")
                await cluster.join("pa")
                assert await cluster.discover("anything") is None
                assert await cluster.search("prefix", "a") is None
            finally:
                await cluster.close()

        asyncio.run(body())


async def _await_recovery(cluster, timeout=15.0):
    """Poll until the supervisor has completed at least one recovery."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if cluster.recoveries >= 1 and not cluster._recovering:
            return
        await asyncio.sleep(0.05)
    raise AssertionError(
        f"supervisor never recovered: recoveries={cluster.recoveries} "
        f"recovering={cluster._recovering} errors={cluster.supervisor_errors}"
    )


@pytest.mark.net
class TestSupervision:
    """Fail-stop worker crashes under the heartbeat supervisor.

    These are the end-to-end halves of the chaos acceptance criteria: a
    SIGKILLed worker is detected within the heartbeat timeout, its peers
    are journaled as crashed and adopted by ring successors, every acked
    registration survives the rebuild, and the counter invariant holds
    at the post-recovery quiescence point.
    """

    PEERS = ["pa", "pd", "pg", "pj", "pm", "pq"]
    KEYS = ["dgemm", "sgemm", "zherk"]

    def test_supervisor_replaces_a_sigkilled_worker(self, tmp_path):
        async def body():
            journal = RegistryJournal(str(tmp_path / "registry.jsonl"))
            cluster = MultiProcessCluster(
                processes=2,
                supervise=True,
                heartbeat_interval=0.1,
                heartbeat_timeout=1.0,
                journal=journal,
            )
            await cluster.start()
            try:
                assert len({group_of(p, 2) for p in self.PEERS}) == 2
                for pid in self.PEERS:
                    await cluster.join(pid)
                    # The cluster API leaves journaling of joins to the
                    # serving layer (ClusterBroker); mirror it here so
                    # the crash events have a membership to subtract from.
                    journal.record("join", pid, 10)
                for key in self.KEYS:
                    record = await cluster.register(key)
                    assert record["host"] is not None  # acked, ledgered

                victim_group = group_of(self.PEERS[-1], 2)
                os.kill(cluster._procs[victim_group].pid, signal.SIGKILL)
                await _await_recovery(cluster)

                assert cluster.supervisor_errors == []
                lost = [p for p in self.PEERS if group_of(p, 2) == victim_group]
                assert lost, "the victim group must have owned peers"
                assert set(cluster.crashed_peers) == set(lost)
                assert cluster.live_ids() == sorted(set(self.PEERS) - set(lost))
                # Satellite: the journal replays to the *post-adoption*
                # membership — one ``crash`` event per lost peer.
                assert journal.replay() == {p: 10 for p in cluster.live_ids()}
                # No acked registration is lost (r=1 successor adoption +
                # ledger replay).
                for key in self.KEYS:
                    hit = await cluster.discover(key)
                    assert hit["found"], key
                _assert_balanced(await cluster.counters())
            finally:
                await cluster.close()
                journal.close()

        asyncio.run(body())

    def test_kill_mid_flood_recovers(self):
        async def body():
            cluster = MultiProcessCluster(
                processes=2,
                supervise=True,
                heartbeat_interval=0.1,
                heartbeat_timeout=1.0,
                rpc_timeout=2.0,  # dead-worker RPCs must fail fast
            )
            await cluster.start()
            try:
                for pid in self.PEERS:
                    await cluster.join(pid)
                for key in self.KEYS:
                    await cluster.register(key)

                async def flood():
                    loop = asyncio.get_running_loop()
                    deadline = loop.time() + 30.0
                    results = []
                    for i in range(40):
                        key = self.KEYS[i % len(self.KEYS)]
                        while True:
                            try:
                                results.append(await cluster.discover(key))
                                break
                            except (
                                ClusterRecovering,
                                ClusterError,
                                TransportError,
                                asyncio.TimeoutError,
                            ):
                                if loop.time() > deadline:
                                    raise
                                await asyncio.sleep(0.1)
                        await asyncio.sleep(0.02)
                    return results

                task = asyncio.create_task(flood())
                await asyncio.sleep(0.1)
                os.kill(cluster._procs[0].pid, signal.SIGKILL)
                results = await task
                await _await_recovery(cluster)

                assert cluster.supervisor_errors == []
                assert len(results) == 40
                assert all(r["found"] for r in results)
                _assert_balanced(await cluster.counters())
            finally:
                await cluster.close()

        asyncio.run(body())
