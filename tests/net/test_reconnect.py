"""Client resilience to mid-RPC connection resets.

A connection reset used to be fatal: every pending future failed and the
client was dead.  With a retry budget (``connect(..., retries=)``) the
client now heals a reset by redialing the original address,
re-introducing the *same* reply endpoint, and re-sending the in-flight
request under the same correlation id — the broker's duplicate absorption
and completed-reply cache make the re-send idempotent.  These tests run
against a scripted flaky broker on a real Unix socket that severs
connections on cue; the end-to-end path (a real worker SIGKILLed under a
supervised cluster) lives in the procgroup and CI suites.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.asyncio_transport import CONTROL_ENDPOINT
from repro.net.bootstrap import BROKER_ENDPOINT
from repro.net.client import DLPTClient, DLPTClientError, DLPTClientReset
from repro.net.wire import FrameReader, encode_frame

pytestmark = pytest.mark.asyncio


class _FlakyServer:
    """A broker double behind a real Unix listener that kills connections
    per a script.

    ``script`` maps the 1-based arrival ordinal of each *request* frame
    (hellos excluded, counted across connections) to a behaviour:
    ``"ok"`` (correlated reply), ``"close"`` (sever the connection
    without answering — a mid-RPC reset), ``"close_listener"`` (sever
    and also stop accepting, so reconnects fail).
    """

    def __init__(self, path: str, script, default="ok"):
        self.path = path
        self.script = script
        self.default = default
        self.frames = []
        self.connections = 0
        self._server = None

    async def start(self):
        self._server = await asyncio.start_unix_server(
            self._on_connection, path=self.path
        )

    async def _on_connection(self, reader, writer):
        self.connections += 1
        frames = FrameReader()
        try:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    return
                for env in frames.feed(chunk):
                    if env.dst == CONTROL_ENDPOINT:
                        continue  # the hello
                    self.frames.append(env)
                    action = self.script.get(len(self.frames), self.default)
                    if action == "close_listener":
                        self._server.close()
                        writer.close()
                        return
                    if action == "close":
                        writer.close()
                        return
                    reply = {
                        "id": env.payload.get("id"),
                        "ok": True,
                        "echo": env.payload.get("op"),
                    }
                    writer.write(encode_frame(BROKER_ENDPOINT, env.src, reply))
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def close(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


async def _flaky(tmp_path, script, default="ok", **policy):
    server = _FlakyServer(str(tmp_path / "flaky.sock"), script, default)
    await server.start()
    client = await DLPTClient.connect(server.path, **policy)
    return client, server


class TestConnectionReset:
    def test_reset_mid_rpc_heals_under_the_same_correlation_id(self, tmp_path):
        async def body():
            client, server = await _flaky(
                tmp_path, {1: "close"}, retries=3, backoff=0.001
            )
            try:
                reply = await client.info()
                assert reply["ok"] and reply["echo"] == "info"
                assert client.reconnects == 1
                assert server.connections == 2  # original + one redial
                # Both attempts carried the same correlation id and the
                # same reply endpoint — idempotent at a real broker.
                rids = {f.payload["id"] for f in server.frames}
                srcs = {f.src for f in server.frames}
                assert len(server.frames) == 2
                assert len(rids) == 1 and len(srcs) == 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_bare_client_keeps_the_fatal_behaviour(self, tmp_path):
        async def body():
            client, server = await _flaky(tmp_path, {1: "close"})  # retries=0
            try:
                with pytest.raises(DLPTClientError, match="connection closed"):
                    await client.info()
                assert client.reconnects == 0
                assert server.connections == 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_reset_budget_exhausted_surfaces_the_reset(self, tmp_path):
        async def body():
            client, server = await _flaky(
                tmp_path, {}, default="close", retries=2, backoff=0.001
            )
            try:
                with pytest.raises(DLPTClientReset):
                    await client.info()
                assert len(server.frames) == 3  # 1 attempt + 2 retries
                assert server.connections == 3
                assert client.reconnects == 2
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_reconnect_failure_also_counts_against_the_budget(self, tmp_path):
        async def body():
            client, server = await _flaky(
                tmp_path, {1: "close_listener"}, retries=2, backoff=0.001
            )
            try:
                with pytest.raises(DLPTClientReset, match="connection"):
                    await client.info()
                assert client.reconnects == 0  # every redial was refused
                assert server.connections == 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())

    def test_pipelined_rpcs_all_heal_through_one_reconnect(self, tmp_path):
        async def body():
            client, server = await _flaky(
                tmp_path, {1: "close"}, retries=3, backoff=0.001
            )
            try:
                futures = [client.info() for _ in range(3)]
                replies = await asyncio.gather(*futures)
                assert all(r["ok"] for r in replies)
                # The reset failed all three in-flight attempts, but the
                # connection lock serialised healing into one redial.
                assert client.reconnects == 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(body())
