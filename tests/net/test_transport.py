"""The :class:`repro.net.transport.Transport` contract, on every
implementation.

One suite, parametrised over transport factories: the discrete-event
:class:`SimTransport` and the deterministic
:class:`LoopbackAsyncioTransport` run in tier-1; the real-socket
:class:`AsyncioTransport` (Unix-domain and TCP) runs the *same* contract
under the ``net`` marker.  Whatever holds here is what protocol code may
rely on regardless of which engine carries its messages.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.dlpt import messages as m
from repro.net.asyncio_transport import AsyncioTransport, LoopbackAsyncioTransport
from repro.net.transport import SimTransport, TransportError

pytestmark = pytest.mark.asyncio

TRANSPORT_PARAMS = [
    pytest.param(SimTransport, id="sim"),
    pytest.param(LoopbackAsyncioTransport, id="loopback"),
    pytest.param(AsyncioTransport, id="asyncio-unix", marks=pytest.mark.net),
    pytest.param(
        lambda: AsyncioTransport(host="127.0.0.1"),
        id="asyncio-tcp",
        marks=pytest.mark.net,
    ),
]


@pytest.fixture(params=TRANSPORT_PARAMS)
def transport_factory(request):
    return request.param


def _msg(n: int) -> m.DataInsertion:
    """A wire-encodable payload with a sequence number riding in it."""
    return m.DataInsertion(node="a", key="ab", datum=n)


class TestContract:
    def test_delivery_and_counters(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env))
            t.send("a", "b", _msg(1))
            await t.drain()
            assert [env.payload.datum for env in got] == [1]
            assert (env := got[0]).src == "a" and env.dst == "b"
            assert t.messages_sent == 1
            assert t.messages_delivered == 1
            assert t.in_flight == 0
            await t.close()

        asyncio.run(body())

    def test_unregistered_destination_dead_letters(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            t.send("a", "nobody", _msg(1))
            await t.drain()
            assert t.messages_dead_lettered == 1
            assert t.messages_delivered == 0
            assert t.in_flight == 0
            await t.close()

        asyncio.run(body())

    def test_reregister_replaces_handler(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            first, second = [], []
            t.register("b", lambda env: first.append(env))
            t.register("b", lambda env: second.append(env))
            assert t.is_registered("b")
            t.send("a", "b", _msg(1))
            await t.drain()
            assert not first and len(second) == 1
            await t.close()

        asyncio.run(body())

    def test_unregister_midflight_dead_letters(self, transport_factory):
        """Registration is checked at delivery time: a message already in
        flight to an endpoint that unregisters is dead-lettered, never
        raised and never delivered to the stale handler."""

        async def body():
            t = transport_factory()
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env))
            t.send("a", "b", _msg(1))
            t.unregister("b")
            assert not t.is_registered("b")
            await t.drain()
            assert not got
            assert t.messages_dead_lettered == 1
            await t.close()

        asyncio.run(body())

    def test_pairwise_fifo(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env.payload.datum))
            for n in range(20):
                t.send("a", "b", _msg(n))
            await t.drain()
            assert got == list(range(20))
            await t.close()

        asyncio.run(body())

    def test_cascading_sends_drain_transitively(self, transport_factory):
        """drain() waits for messages sent *by handlers*, recursively."""

        async def body():
            t = transport_factory()
            await t.start()
            got = []

            def relay(env):
                n = env.payload.datum
                got.append((env.dst, n))
                if n > 0:
                    t.send(env.dst, "b" if env.dst == "a" else "a", _msg(n - 1))

            t.register("a", relay)
            t.register("b", relay)
            t.send("@test", "a", _msg(5))
            await t.drain()
            assert [n for _, n in got] == [5, 4, 3, 2, 1, 0]
            assert t.messages_sent == 6
            assert t.messages_delivered == 6
            assert t.in_flight == 0
            await t.close()

        asyncio.run(body())

    def test_counter_invariant_at_quiescence(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            t.register("b", lambda env: None)
            for n in range(5):
                t.send("a", "b", _msg(n))
            t.send("a", "nobody", _msg(99))
            await t.drain()
            assert t.messages_sent == (
                t.messages_delivered + t.messages_dropped + t.messages_dead_lettered
            )
            assert t.in_flight == 0
            await t.close()

        asyncio.run(body())

    def test_clock_is_monotonic(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            before = t.now()
            t.send("a", "nobody", _msg(1))
            await t.drain()
            assert t.now() >= before >= 0.0
            await t.close()

        asyncio.run(body())

    def test_call_later_fires_and_cancel_suppresses(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            fired = []
            t.call_later(0.01, lambda: fired.append("kept"))
            handle = t.call_later(0.01, lambda: fired.append("cancelled"))
            handle.cancel()
            if isinstance(t, SimTransport):
                t.sim.run_until_idle()
            else:
                await asyncio.sleep(0.05)
            assert fired == ["kept"]
            await t.close()

        asyncio.run(body())


class TestAsyncioSpecifics:
    """Behaviour the event-loop transports add on top of the contract."""

    def test_send_before_start_raises(self):
        t = LoopbackAsyncioTransport()
        with pytest.raises(TransportError, match="not started"):
            t.send("a", "b", _msg(1))

    def test_payloads_cross_the_codec(self):
        """Loopback delivery is a full encode/decode round-trip: the
        receiver gets an equal — but distinct — payload object, so any
        accidental reliance on object identity breaks in tier-1."""

        async def body():
            t = LoopbackAsyncioTransport()
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env.payload))
            sent = m.SearchingHost(
                node="ab",
                payload=m.NodePayload(
                    label="ab", father="a", children=frozenset({"aba"}), data=(1, "x")
                ),
            )
            t.send("a", "b", sent)
            await t.drain()
            assert got[0] == sent and got[0] is not sent
            await t.close()

        asyncio.run(body())

    def test_handler_exception_surfaces_at_drain(self):
        async def body():
            t = LoopbackAsyncioTransport()
            await t.start()

            def bad(env):
                raise RuntimeError("handler exploded")

            t.register("b", bad)
            t.send("a", "b", _msg(1))
            with pytest.raises(TransportError, match="error"):
                await t.drain()
            # The failure was consumed: counters are quiescent and the
            # transport keeps working afterwards.
            assert t.in_flight == 0
            t.register("b", lambda env: None)
            t.send("a", "b", _msg(2))
            await t.drain()
            await t.close()

        asyncio.run(body())

    def test_unencodable_payload_counts_as_dropped(self):
        async def body():
            t = LoopbackAsyncioTransport()
            await t.start()
            t.register("b", lambda env: None)
            t.send("a", "b", object())
            with pytest.raises(TransportError):
                await t.drain()
            assert t.messages_dropped == 1
            assert t.in_flight == 0
            await t.close()

        asyncio.run(body())
