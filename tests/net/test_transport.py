"""The :class:`repro.net.transport.Transport` contract, on every
implementation.

One suite, parametrised over transport factories: the discrete-event
:class:`SimTransport` and the deterministic
:class:`LoopbackAsyncioTransport` run in tier-1; the real-socket
:class:`AsyncioTransport` (Unix-domain and TCP) runs the *same* contract
under the ``net`` marker.  Whatever holds here is what protocol code may
rely on regardless of which engine carries its messages.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.dlpt import messages as m
from repro.net.asyncio_transport import (
    CONTROL_ENDPOINT,
    AsyncioTransport,
    LoopbackAsyncioTransport,
)
from repro.net.p2p import PeerAsyncioTransport
from repro.net.transport import SimTransport, TransportError
from repro.net.wire import WIRE_SCHEMA, encode_frame

pytestmark = pytest.mark.asyncio

TRANSPORT_PARAMS = [
    pytest.param(SimTransport, id="sim"),
    pytest.param(LoopbackAsyncioTransport, id="loopback"),
    pytest.param(AsyncioTransport, id="asyncio-unix", marks=pytest.mark.net),
    pytest.param(
        lambda: AsyncioTransport(host="127.0.0.1"),
        id="asyncio-tcp",
        marks=pytest.mark.net,
    ),
    pytest.param(PeerAsyncioTransport, id="p2p-unix", marks=pytest.mark.net),
    pytest.param(
        lambda: PeerAsyncioTransport(host="127.0.0.1"),
        id="p2p-tcp",
        marks=pytest.mark.net,
    ),
]


@pytest.fixture(params=TRANSPORT_PARAMS)
def transport_factory(request):
    return request.param


def _msg(n: int) -> m.DataInsertion:
    """A wire-encodable payload with a sequence number riding in it."""
    return m.DataInsertion(node="a", key="ab", datum=n)


class TestContract:
    def test_delivery_and_counters(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env))
            t.send("a", "b", _msg(1))
            await t.drain()
            assert [env.payload.datum for env in got] == [1]
            assert (env := got[0]).src == "a" and env.dst == "b"
            assert t.messages_sent == 1
            assert t.messages_delivered == 1
            assert t.in_flight == 0
            await t.close()

        asyncio.run(body())

    def test_unregistered_destination_dead_letters(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            t.send("a", "nobody", _msg(1))
            await t.drain()
            assert t.messages_dead_lettered == 1
            assert t.messages_delivered == 0
            assert t.in_flight == 0
            await t.close()

        asyncio.run(body())

    def test_reregister_replaces_handler(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            first, second = [], []
            t.register("b", lambda env: first.append(env))
            t.register("b", lambda env: second.append(env))
            assert t.is_registered("b")
            t.send("a", "b", _msg(1))
            await t.drain()
            assert not first and len(second) == 1
            await t.close()

        asyncio.run(body())

    def test_unregister_midflight_dead_letters(self, transport_factory):
        """Registration is checked at delivery time: a message already in
        flight to an endpoint that unregisters is dead-lettered, never
        raised and never delivered to the stale handler."""

        async def body():
            t = transport_factory()
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env))
            t.send("a", "b", _msg(1))
            t.unregister("b")
            assert not t.is_registered("b")
            await t.drain()
            assert not got
            assert t.messages_dead_lettered == 1
            await t.close()

        asyncio.run(body())

    def test_pairwise_fifo(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env.payload.datum))
            for n in range(20):
                t.send("a", "b", _msg(n))
            await t.drain()
            assert got == list(range(20))
            await t.close()

        asyncio.run(body())

    def test_cascading_sends_drain_transitively(self, transport_factory):
        """drain() waits for messages sent *by handlers*, recursively."""

        async def body():
            t = transport_factory()
            await t.start()
            got = []

            def relay(env):
                n = env.payload.datum
                got.append((env.dst, n))
                if n > 0:
                    t.send(env.dst, "b" if env.dst == "a" else "a", _msg(n - 1))

            t.register("a", relay)
            t.register("b", relay)
            t.send("@test", "a", _msg(5))
            await t.drain()
            assert [n for _, n in got] == [5, 4, 3, 2, 1, 0]
            assert t.messages_sent == 6
            assert t.messages_delivered == 6
            assert t.in_flight == 0
            await t.close()

        asyncio.run(body())

    def test_counter_invariant_at_quiescence(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            t.register("b", lambda env: None)
            for n in range(5):
                t.send("a", "b", _msg(n))
            t.send("a", "nobody", _msg(99))
            await t.drain()
            assert t.messages_sent == (
                t.messages_delivered + t.messages_dropped + t.messages_dead_lettered
            )
            assert t.in_flight == 0
            await t.close()

        asyncio.run(body())

    def test_clock_is_monotonic(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            before = t.now()
            t.send("a", "nobody", _msg(1))
            await t.drain()
            assert t.now() >= before >= 0.0
            await t.close()

        asyncio.run(body())

    def test_call_later_fires_and_cancel_suppresses(self, transport_factory):
        async def body():
            t = transport_factory()
            await t.start()
            fired = []
            t.call_later(0.01, lambda: fired.append("kept"))
            handle = t.call_later(0.01, lambda: fired.append("cancelled"))
            handle.cancel()
            if isinstance(t, SimTransport):
                t.sim.run_until_idle()
            else:
                await asyncio.sleep(0.05)
            assert fired == ["kept"]
            await t.close()

        asyncio.run(body())


class TestAsyncioSpecifics:
    """Behaviour the event-loop transports add on top of the contract."""

    def test_send_before_start_raises(self):
        t = LoopbackAsyncioTransport()
        with pytest.raises(TransportError, match="not started"):
            t.send("a", "b", _msg(1))

    def test_payloads_cross_the_codec(self):
        """Loopback delivery is a full encode/decode round-trip: the
        receiver gets an equal — but distinct — payload object, so any
        accidental reliance on object identity breaks in tier-1."""

        async def body():
            t = LoopbackAsyncioTransport()
            await t.start()
            got = []
            t.register("b", lambda env: got.append(env.payload))
            sent = m.SearchingHost(
                node="ab",
                payload=m.NodePayload(
                    label="ab", father="a", children=frozenset({"aba"}), data=(1, "x")
                ),
            )
            t.send("a", "b", sent)
            await t.drain()
            assert got[0] == sent and got[0] is not sent
            await t.close()

        asyncio.run(body())

    def test_handler_exception_surfaces_at_drain(self):
        async def body():
            t = LoopbackAsyncioTransport()
            await t.start()

            def bad(env):
                raise RuntimeError("handler exploded")

            t.register("b", bad)
            t.send("a", "b", _msg(1))
            with pytest.raises(TransportError, match="error"):
                await t.drain()
            # The failure was consumed: counters are quiescent and the
            # transport keeps working afterwards.
            assert t.in_flight == 0
            t.register("b", lambda env: None)
            t.send("a", "b", _msg(2))
            await t.drain()
            await t.close()

        asyncio.run(body())

    def test_unencodable_payload_counts_as_dropped(self):
        async def body():
            t = LoopbackAsyncioTransport()
            await t.start()
            t.register("b", lambda env: None)
            t.send("a", "b", object())
            with pytest.raises(TransportError):
                await t.drain()
            assert t.messages_dropped == 1
            assert t.in_flight == 0
            await t.close()

        asyncio.run(body())


async def _poll(predicate, timeout: float = 5.0) -> None:
    """Await a cross-transport condition (two event loops' worth of socket
    I/O means no single drain() covers it)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.005)


@pytest.mark.net
class TestPeerToPeerSpecifics:
    """The p2p transport's own surface: lazy dial, link cache, idle reap,
    reconnect-with-backoff, drop accounting, control-plane bypass."""

    @staticmethod
    async def _pair(**kwargs):
        """Two transports; ``a`` resolves every endpoint to ``b``."""
        a = PeerAsyncioTransport(**kwargs)
        b = PeerAsyncioTransport()
        await a.start()
        await b.start()
        a.set_resolve(lambda endpoint: b.address)
        return a, b

    def test_cross_transport_delivery_and_frame_counters(self):
        async def body():
            a, b = await self._pair()
            got = []
            b.register("remote", lambda env: got.append(env.payload.datum))
            for n in range(3):
                a.send("local", "remote", _msg(n))
            await a.drain()
            await _poll(lambda: len(got) == 3)
            assert got == [0, 1, 2]
            # Sender counts the frames delivered when written; the
            # receiver counts them sent on ingress — both balance, and
            # the frame totals agree.
            assert a.messages_sent == a.messages_delivered == 3
            assert b.messages_sent == b.messages_delivered == 3
            assert a.frames_out == 3 == b.frames_in
            assert a.frames_in == 0 == b.frames_out
            await a.close()
            await b.close()

        asyncio.run(body())

    def test_links_are_dialed_lazily_and_cached(self):
        async def body():
            a, b = await self._pair()
            b.register("remote", lambda env: None)
            assert a.links_dialed == 0
            a.send("x", "remote", _msg(1))
            a.send("x", "remote", _msg(2))
            await a.drain()
            await _poll(lambda: b.messages_delivered == 2)
            assert a.links_dialed == 1  # one cached link carried both
            await a.close()
            await b.close()

        asyncio.run(body())

    def test_idle_links_are_reaped_and_redialed(self):
        async def body():
            a, b = await self._pair(idle_timeout=0.05)
            got = []
            b.register("remote", lambda env: got.append(env.payload.datum))
            a.send("x", "remote", _msg(1))
            await _poll(lambda: got == [1])
            await _poll(lambda: a.links_reaped >= 1, timeout=2.0)
            assert not a._links
            # The next frame redials transparently.
            a.send("x", "remote", _msg(2))
            await _poll(lambda: got == [1, 2])
            assert a.links_dialed == 2
            await a.close()
            await b.close()

        asyncio.run(body())

    def test_dial_failure_drops_queued_frames(self):
        async def body():
            a = PeerAsyncioTransport(dial_retries=1, dial_backoff=0.01)
            await a.start()
            a.set_resolve(lambda endpoint: ("unix", "/nonexistent/peer.sock"))
            a.send("x", "remote", _msg(1))
            await _poll(lambda: a.messages_dropped == 1)
            assert a.messages_sent == 1
            assert a.in_flight == 0
            with pytest.raises(TransportError, match="error"):
                await a.drain()
            await a.close()

        asyncio.run(body())

    def test_reconnect_with_backoff_survives_late_listener(self, tmp_path):
        async def body():
            # The peer is not up yet: frames queue while the dialer backs
            # off, and flow once the listener finally binds.
            path = str(tmp_path / "late-peer.sock")
            a = PeerAsyncioTransport(dial_retries=8, dial_backoff=0.05)
            await a.start()
            a.set_resolve(lambda endpoint: ("unix", path))
            a.send("x", "remote", _msg(7))
            await asyncio.sleep(0.1)
            b = PeerAsyncioTransport(path=path)
            got = []
            await b.start()
            b.register("remote", lambda env: got.append(env.payload.datum))
            await _poll(lambda: got == [7])
            assert a.messages_dropped == 0
            await a.close()
            await b.close()

        asyncio.run(body())

    def test_control_plane_bypasses_all_counters(self):
        async def body():
            a, b = await self._pair()
            got = []
            b.register("@ctl-0", lambda env: got.append(env.payload))
            a.send("@coord", "@ctl-0", {"op": "ping"})
            await _poll(lambda: got == [{"op": "ping"}])
            for t in (a, b):
                assert t.messages_sent == 0
                assert t.messages_delivered == 0
                assert t.frames_out == 0 and t.frames_in == 0
            await a.close()
            await b.close()

        asyncio.run(body())

    def test_kill_link_severs_without_recording_an_error(self):
        """``kill_link`` is chaos's connection-kill fault: the cached link
        dies, no transport error is recorded (a kill is injected, not a
        defect), and the next send re-dials from scratch."""

        async def body():
            a, b = await self._pair()
            got = []
            b.register("remote", lambda env: got.append(env.payload.datum))
            assert a.kill_link("remote") is False  # nothing dialed yet
            a.send("x", "remote", _msg(1))
            await _poll(lambda: got == [1])
            assert a.kill_link("remote") is True
            assert not a._links
            assert a.errors == []
            a.send("x", "remote", _msg(2))
            await _poll(lambda: got == [1, 2])
            assert a.links_dialed == 2
            await a.close()
            await b.close()

        asyncio.run(body())

    def test_reset_accounting_zeroes_the_epoch(self):
        async def body():
            a, b = await self._pair()
            b.register("remote", lambda env: None)
            a.send("x", "remote", _msg(1))
            await a.drain()
            assert a.messages_sent == 1 and a.frames_out == 1
            a.reset_accounting()
            assert a.messages_sent == a.messages_delivered == 0
            assert a.frames_out == a.frames_in == 0
            assert a.in_flight == 0
            await a.close()
            await b.close()

        asyncio.run(body())

    def test_unresolvable_endpoint_dead_letters(self):
        async def body():
            a = PeerAsyncioTransport()
            await a.start()
            # No resolver at all: only local endpoints exist.
            a.send("x", "elsewhere", _msg(1))
            await a.drain()
            assert a.messages_dead_lettered == 1
            # A resolver mapping the endpoint to *this* transport's own
            # address is a routing loop, also dead-lettered.
            a.set_resolve(lambda endpoint: a.address)
            a.send("x", "elsewhere", _msg(2))
            await a.drain()
            assert a.messages_dead_lettered == 2
            await a.close()

        asyncio.run(body())


@pytest.mark.net
class TestMidFrameConnectionLoss:
    """A connection dying *inside* a length-prefixed frame: the torn
    frame must be discarded at the reader — never half-delivered, never
    counted — and the listener must keep serving subsequent connections.
    Exercised against all four socket transports."""

    SOCKET_TRANSPORTS = [
        pytest.param(AsyncioTransport, id="asyncio-unix"),
        pytest.param(lambda: AsyncioTransport(host="127.0.0.1"), id="asyncio-tcp"),
        pytest.param(PeerAsyncioTransport, id="p2p-unix"),
        pytest.param(
            lambda: PeerAsyncioTransport(host="127.0.0.1"), id="p2p-tcp"
        ),
    ]

    @staticmethod
    async def _open(address):
        if address[0] == "unix":
            return await asyncio.open_unix_connection(address[1])
        return await asyncio.open_connection(address[1], address[2])

    @staticmethod
    def _hello(endpoint: str) -> bytes:
        return encode_frame(
            endpoint,
            CONTROL_ENDPOINT,
            {"hello": WIRE_SCHEMA, "endpoint": endpoint},
        )

    @pytest.mark.parametrize("factory", SOCKET_TRANSPORTS)
    def test_torn_frame_is_discarded_not_half_delivered(self, factory):
        async def body():
            t = factory()
            await t.start()
            got = []
            t.register("sink", lambda env: got.append(env.payload.datum))

            # Connection 1: a hello, one complete frame, then death
            # halfway through a second frame.
            reader, writer = await self._open(t.address)
            torn = encode_frame("@probe", "sink", _msg(2))
            writer.write(self._hello("@probe"))
            writer.write(encode_frame("@probe", "sink", _msg(1)))
            writer.write(torn[: len(torn) // 2])
            await writer.drain()
            writer.close()
            await _poll(lambda: got == [1])
            await asyncio.sleep(0.05)  # time for any phantom delivery

            # The torn frame vanished without a trace: not delivered, not
            # counted into the accounting domain, not an error.
            assert got == [1]
            assert t.messages_sent == 1
            assert t.errors == []

            # The listener survived: a fresh connection is served.
            reader2, writer2 = await self._open(t.address)
            writer2.write(self._hello("@probe2"))
            writer2.write(encode_frame("@probe2", "sink", _msg(3)))
            await writer2.drain()
            await _poll(lambda: got == [1, 3])
            assert t.messages_sent == 2
            assert t.messages_sent == (
                t.messages_delivered
                + t.messages_dropped
                + t.messages_dead_lettered
            )
            writer2.close()
            await t.close()

        asyncio.run(body())
