"""Construction equivalence: the bulk fast path ≡ sequential insertion.

The bulk-construction PR (:meth:`PGCPTree.insert_batch`'s sorted-cursor
walk, :meth:`LexicographicMapping.place_batch`'s deferred run-grouped
placement, :meth:`Ring.join_many`, and the :meth:`DLPTSystem.register_batch`
/ :meth:`DLPTSystem.add_peers` plumbing) must be a pure performance change:
on any key set — random, post-churn, or re-registered by fault repair — the
final tree (node set, parent/child edges, per-node data), the node→peer
placements, the entry-node index, the ``tree.version`` advance and the
O(1) registered-key counter must be identical to the sequential seed path.
These property tests drive twin systems through identical inputs, one per
key and one batched — same style as
``tests/dlpt/test_discovery_equivalence.py``.
"""

from __future__ import annotations

import json
import random
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import Alphabet
from repro.core.pgcp import PGCPTree
from repro.dlpt.failures import ReplicationManager, crash_peer, repair
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity

ALPHABET = Alphabet(digits=("a", "b", "c"), name="abc")

keys_st = st.lists(
    st.text(alphabet="abc", min_size=1, max_size=8), min_size=1, max_size=25
)
pairs_st = st.lists(
    st.tuples(st.text(alphabet="abc", min_size=1, max_size=8), st.integers(0, 3)),
    min_size=1,
    max_size=25,
)
peer_ids_st = st.lists(
    st.text(alphabet="abc", min_size=2, max_size=6),
    min_size=2,
    max_size=8,
    unique=True,
)


def tree_shape(tree: PGCPTree) -> dict:
    """Full structural fingerprint: every node's parent edge, child edges
    and registered data."""
    return {
        node.label: (
            node.parent.label if node.parent is not None else None,
            sorted(child.label for child in node.children.values()),
            sorted(map(repr, node.data)),
        )
        for node in tree.nodes()
    }


def placements(system: DLPTSystem) -> dict:
    return {label: peer.id for label, peer in system.mapping.host.items()}


def assert_equivalent(batch: DLPTSystem, seq: DLPTSystem) -> None:
    batch.check_invariants()
    seq.check_invariants()
    assert tree_shape(batch.tree) == tree_shape(seq.tree)
    assert batch.tree.version == seq.tree.version
    assert batch.tree.filled_count == seq.tree.filled_count
    assert batch.registered_key_count == len(seq.tree.keys())
    assert placements(batch) == placements(seq)
    assert list(batch.node_index) == list(seq.node_index)


def _twin_systems(peer_ids, capacity=3):
    """Two systems: one bootstrapped via add_peers, one via the per-peer
    loop — both on the same identifiers."""
    batch = DLPTSystem(alphabet=ALPHABET, capacity_model=FixedCapacity(capacity))
    batch.add_peers(random.Random(0), peer_ids=peer_ids)
    seq = DLPTSystem(alphabet=ALPHABET, capacity_model=FixedCapacity(capacity))
    for pid in peer_ids:
        seq.add_peer(random.Random(0), peer_id=pid)
    return batch, seq


class TestRandomTrees:
    """Bare-tree equivalence: insert_batch vs per-key insert."""

    @settings(max_examples=80, deadline=None)
    @given(keys=keys_st)
    def test_one_batch_matches_sequential(self, keys):
        seq, batch = PGCPTree(), PGCPTree()
        for key in keys:
            seq.insert(key)
        batch.insert_batch([(key, None) for key in keys])
        seq.check_invariants()
        batch.check_invariants()
        assert tree_shape(batch) == tree_shape(seq)
        assert batch.version == seq.version  # same created-node count
        assert batch.filled_count == seq.filled_count == len(set(keys))

    @settings(max_examples=60, deadline=None)
    @given(keys=keys_st, chunk=st.integers(1, 6))
    def test_chunked_batches_on_existing_tree(self, keys, chunk):
        """Batches applied to a non-empty tree (the runner registers one
        batch per growth unit) still converge to the sequential tree."""
        seq, batch = PGCPTree(), PGCPTree()
        for key in keys:
            seq.insert(key)
        for i in range(0, len(keys), chunk):
            batch.insert_batch([(key, None) for key in keys[i : i + chunk]])
        batch.check_invariants()
        assert tree_shape(batch) == tree_shape(seq)
        assert batch.version == seq.version
        assert batch.filled_count == seq.filled_count

    @settings(max_examples=60, deadline=None)
    @given(pairs=pairs_st)
    def test_explicit_data_and_duplicate_keys(self, pairs):
        """(key, datum) pairs — including repeated keys with distinct data
        — accumulate identically; filled_count counts keys, not data."""
        seq, batch = PGCPTree(), PGCPTree()
        for key, datum in pairs:
            seq.insert(key, datum)
        batch.insert_batch(pairs)
        batch.check_invariants()
        assert tree_shape(batch) == tree_shape(seq)
        assert batch.filled_count == seq.filled_count == len({k for k, _ in pairs})


class TestSystemTwins:
    @settings(max_examples=60, deadline=None)
    @given(peer_ids=peer_ids_st, keys=keys_st)
    def test_bulk_bootstrap_and_register_batch(self, peer_ids, keys):
        batch, seq = _twin_systems(peer_ids)
        batch.register_batch(keys)
        for key in keys:
            seq.register(key)
        assert_equivalent(batch, seq)

    @settings(max_examples=40, deadline=None)
    @given(peer_ids=peer_ids_st, pairs=pairs_st)
    def test_register_pairs_with_data(self, peer_ids, pairs):
        batch, seq = _twin_systems(peer_ids)
        batch.register_pairs(pairs)
        for key, datum in pairs:
            seq.register(key, datum)
        assert_equivalent(batch, seq)

    @settings(max_examples=30, deadline=None)
    @given(peer_ids=peer_ids_st, seed=st.integers(0, 2**16), n=st.integers(1, 12))
    def test_random_id_bootstrap_consumes_the_stream_identically(self, peer_ids, seed, n):
        """add_peers with drawn identifiers makes exactly the draws the
        sequential loop would (same ids, same ring) — the RNG-stream
        contract the runner's build_system relies on."""
        batch = DLPTSystem(alphabet=ALPHABET, capacity_model=FixedCapacity(3))
        batch.add_peers(random.Random(seed), n)
        seq = DLPTSystem(alphabet=ALPHABET, capacity_model=FixedCapacity(3))
        rng = random.Random(seed)
        for _ in range(n):
            seq.add_peer(rng)
        assert batch.ring.ids() == seq.ring.ids()


class TestAfterChurn:
    @settings(max_examples=40, deadline=None)
    @given(
        peer_ids=peer_ids_st,
        keys=keys_st,
        churn=st.lists(
            st.one_of(
                st.tuples(st.just("join"), st.text(alphabet="abc", min_size=2, max_size=6)),
                st.tuples(st.just("leave"), st.integers(0, 10**6)),
                st.tuples(st.just("register"), st.text(alphabet="abc", min_size=1, max_size=8)),
                st.tuples(st.just("unregister"), st.integers(0, 10**6)),
            ),
            max_size=15,
        ),
        late_keys=keys_st,
    )
    def test_post_churn_batch_matches_sequential(self, peer_ids, keys, churn, late_keys):
        """After identical membership churn and un/registrations, a late
        batch lands identically to the per-key loop — and the O(1) key
        counter tracks removals and contractions correctly throughout."""
        batch, seq = _twin_systems(peer_ids)
        batch.register_batch(keys)
        for key in keys:
            seq.register(key)
        live_keys = sorted(set(keys))
        for op in churn:
            for system in (batch, seq):
                ring = system.ring
                if op[0] == "join" and op[1] not in ring:
                    system.add_peer(random.Random(1), peer_id=op[1], capacity=3)
                elif op[0] == "leave" and len(ring) > 1:
                    system.remove_peer(ring.id_at(op[1] % len(ring)))
                elif op[0] == "register":
                    system.register(op[1])
                elif op[0] == "unregister" and live_keys:
                    system.unregister(live_keys[op[1] % len(live_keys)])
            if op[0] == "register" and op[1] not in live_keys:
                live_keys = sorted(set(live_keys) | {op[1]})
            elif op[0] == "unregister" and live_keys:
                live_keys.pop(op[1] % len(live_keys))
        batch.register_batch(late_keys)
        for key in late_keys:
            seq.register(key)
        assert_equivalent(batch, seq)
        assert batch.registered_key_count == len(batch.tree.keys())


class TestAfterFaults:
    @settings(max_examples=40, deadline=None)
    @given(
        peer_ids=st.lists(
            st.text(alphabet="abc", min_size=2, max_size=6),
            min_size=3, max_size=8, unique=True,
        ),
        keys=keys_st,
        crash_draws=st.lists(st.integers(0, 10**6), min_size=1, max_size=3),
    )
    def test_repair_bulk_matches_repair_seed(self, peer_ids, keys, crash_draws):
        """Fault repair through register_pairs rebuilds the exact tree the
        per-key re-registration loop would, and reconciles the key counter
        after the crash surgery that bypassed the normal remove path."""
        twins = []
        for _ in range(2):
            system = DLPTSystem(alphabet=ALPHABET, capacity_model=FixedCapacity(3))
            system.add_peers(random.Random(0), peer_ids=peer_ids)
            system.register_batch(keys)
            twins.append(system)
        bulk_sys, seed_sys = twins
        replications = [ReplicationManager(s, factor=1) for s in twins]
        for r in replications:
            r.replicate_all()
        lost: set[str] = set()
        for draw in crash_draws:
            if len(bulk_sys.ring) <= 1:
                break
            victim = bulk_sys.ring.id_at(draw % len(bulk_sys.ring))
            for system, replication in zip(twins, replications):
                report = crash_peer(system, victim)
                replication.on_peer_removed(victim)
            lost |= report.lost_keys
            # Crash surgery must keep the counter consistent pre-repair.
            for system in twins:
                assert system.registered_key_count == len(system.tree.keys())
        repair(bulk_sys, replications[0], lost_keys=frozenset(lost), construction="bulk")
        repair(seed_sys, replications[1], lost_keys=frozenset(lost), construction="seed")
        assert_equivalent(bulk_sys, seed_sys)
        assert bulk_sys.registered_key_count == len(bulk_sys.tree.keys())


class TestRunnerEquivalence:
    """End-to-end: ExperimentConfig(construction=...) is metrics-invariant
    and trace replay stays byte-identical under the default bulk path."""

    def _config(self, **overrides):
        from repro.experiments.config import ExperimentConfig
        from repro.lb.mlt import MLT
        from repro.peers.churn import DYNAMIC

        defaults = dict(
            n_peers=30,
            total_units=12,
            growth_units=4,
            load_fraction=0.3,
            churn=DYNAMIC,
            workload="flash_crowd:S3L:onset=5:half_life=3",
            lb=MLT(),
        )
        defaults.update(overrides)
        return ExperimentConfig(**defaults)

    @staticmethod
    def _metrics_bytes(result) -> str:
        from repro.experiments.metrics import run_metrics_dict

        return json.dumps(run_metrics_dict(result), sort_keys=True)

    def test_construction_axis_is_metrics_invariant(self):
        from repro.experiments.runner import run_single

        cfg = self._config()
        bulk = run_single(cfg, 0)
        seed = run_single(replace(cfg, construction="seed"), 0)
        assert self._metrics_bytes(bulk) == self._metrics_bytes(seed)

    def test_construction_axis_invariant_under_faults(self):
        """With fault injection the runner reads the O(1) key counter and
        repair re-registers through the batch path — still invariant."""
        from repro.experiments.runner import run_single

        cfg = self._config(faults="crash_storm:0.05:r=2")
        bulk = run_single(cfg, 0)
        seed = run_single(replace(cfg, construction="seed"), 0)
        assert self._metrics_bytes(bulk) == self._metrics_bytes(seed)

    def test_record_replay_byte_identical_under_bulk(self):
        from repro.experiments.runner import record_single, replay_single
        from repro.workloads.traces import WorkloadTrace

        cfg = self._config()
        result, trace = record_single(cfg, 0)
        replayed = replay_single(cfg, WorkloadTrace.loads(trace.dumps()))
        assert self._metrics_bytes(replayed) == self._metrics_bytes(result)

    def test_signature_key_only_when_non_default(self):
        cfg = self._config()
        assert "construction" not in cfg.signature()
        assert replace(cfg, construction="seed").signature()["construction"] == "seed"
