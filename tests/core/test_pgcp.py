"""Reference PGCP tree: Definition 1 invariants, Figure 1, search modes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import is_proper_prefix
from repro.core.pgcp import PGCPTree
from repro.workloads.keys import blas_routines, paper_figure1_binary_keys

binary_keys = st.text(alphabet="01", min_size=1, max_size=10)
name_keys = st.text(alphabet="abcdS3L_P", min_size=1, max_size=8)


def build(keys):
    tree = PGCPTree()
    for k in keys:
        tree.insert(k)
    tree.check_invariants()
    return tree


class TestPaperFigure1:
    def test_figure_1a_structure(self):
        """Figure 1(a): keys 01, 10101, 10111, 101111 force structural
        nodes 101 and ε."""
        tree = build(paper_figure1_binary_keys())
        assert tree.labels() == {"", "01", "101", "10101", "10111", "101111"}
        # ε and 101 are the unfilled structural nodes of the figure.
        assert not tree.node("").data
        assert not tree.node("101").data
        # 101111 hangs below 10111.
        assert tree.node("101111").parent is tree.node("10111")
        # 101's children are the two divergent branches.
        assert set(tree.node("101").children.values()) == {
            tree.node("10101"),
            tree.node("10111"),
        }

    def test_figure_1b_blas_no_hashing_needed(self):
        """Figure 1(b): the tree builds directly over BLAS routine names."""
        tree = build(blas_routines())
        assert tree.keys() == set(blas_routines())


class TestInsertionCases:
    """One test per Algorithm 3 case, on the sequential reference tree."""

    def test_first_key_becomes_root(self):
        tree = build(["1010"])
        assert tree.root.label == "1010"
        assert tree.root.data == {"1010"}

    def test_existing_key_accumulates_data(self):
        tree = PGCPTree()
        tree.insert("10", "server-a")
        tree.insert("10", "server-b")
        tree.check_invariants()
        assert tree.node("10").data == {"server-a", "server-b"}
        assert len(tree) == 1

    def test_key_below_leaf(self):
        tree = build(["10", "1011"])
        assert tree.node("1011").parent is tree.node("10")

    def test_key_above_root(self):
        tree = build(["1011", "10"])
        assert tree.root.label == "10"
        assert tree.node("1011").parent is tree.root

    def test_sibling_split_creates_gcp_node(self):
        tree = build(["1010", "1001"])
        assert tree.root.label == "10"
        assert not tree.root.data  # structural
        assert set(tree.root.children) == {"0", "1"}

    def test_divergent_roots_create_epsilon(self):
        tree = build(["01", "10"])
        assert tree.root.label == ""

    def test_key_between_parent_and_child(self):
        # 1 -> 10111 exists; inserting 101 must splice between them.
        tree = build(["1", "10111", "101"])
        assert tree.node("101").parent is tree.node("1")
        assert tree.node("10111").parent is tree.node("101")

    def test_split_below_interior_node(self):
        tree = build(["10", "10101", "10111"])
        # The split node 101 appears between 10 and the two leaves.
        assert tree.node("101").parent is tree.node("10")
        assert tree.node("10101").parent is tree.node("101")

    def test_insertion_returns_the_key_node(self):
        tree = PGCPTree()
        node = tree.insert("daxpy")
        assert node.label == "daxpy"

    def test_duplicate_datum_is_set_semantics(self):
        tree = PGCPTree()
        tree.insert("10", "x")
        tree.insert("10", "x")
        assert tree.node("10").data == {"x"}

    def test_epsilon_key_insertable_when_root_is_epsilon(self):
        tree = build(["01", "10"])  # root ε exists, structural
        tree.insert("", "meta")
        tree.check_invariants()
        assert tree.node("").data == {"meta"}

    def test_order_independence_of_node_set(self):
        keys = ["1010", "1001", "11", "10", "0"]
        import itertools

        expected = build(keys).labels()
        for perm in itertools.permutations(keys):
            assert build(perm).labels() == expected, perm


class TestRemoval:
    def test_remove_leaf_prunes(self):
        tree = build(["10", "1011"])
        assert tree.remove("1011")
        tree.check_invariants()
        assert "1011" not in tree

    def test_remove_contracts_single_child_chain(self):
        tree = build(["1010", "1001"])  # root "10" structural
        assert tree.remove("1001")
        tree.check_invariants()
        # Structural node 10 had one child left -> contracted away.
        assert tree.labels() == {"1010"}
        assert tree.root.label == "1010"

    def test_remove_missing_returns_false(self):
        tree = build(["10"])
        assert not tree.remove("11")

    def test_remove_structural_node_returns_false(self):
        tree = build(["1010", "1001"])
        assert not tree.remove("10")  # structural: no data

    def test_remove_specific_datum_keeps_others(self):
        tree = PGCPTree()
        tree.insert("10", "a")
        tree.insert("10", "b")
        assert tree.remove("10", "a")
        assert tree.node("10").data == {"b"}

    def test_remove_last_node_empties_tree(self):
        tree = build(["10"])
        assert tree.remove("10")
        assert tree.root is None
        assert len(tree) == 0

    def test_internal_filled_node_survives_as_structural(self):
        tree = build(["10", "100", "101"])
        assert tree.remove("10")
        tree.check_invariants()
        assert "10" in tree  # still needed structurally (2 children)
        assert not tree.node("10").data

    def test_reinsert_after_remove(self):
        tree = build(["10", "1011"])
        tree.remove("1011")
        tree.insert("1011")
        tree.check_invariants()
        assert "1011" in tree.keys()


class TestSearch:
    @pytest.fixture
    def blas_tree(self):
        return build(blas_routines())

    def test_lookup_hit(self, blas_tree):
        assert blas_tree.lookup("dgemm").data == {"dgemm"}

    def test_lookup_miss(self, blas_tree):
        assert blas_tree.lookup("nonexistent") is None

    def test_complete_partial_string(self, blas_tree):
        assert blas_tree.complete("dgem") == ["dgemm", "dgemv"]

    def test_complete_whole_key(self, blas_tree):
        assert blas_tree.complete("dgemm") == ["dgemm"]

    def test_complete_empty_prefix_returns_all(self, blas_tree):
        assert blas_tree.complete("") == sorted(blas_routines())

    def test_complete_no_match(self, blas_tree):
        assert blas_tree.complete("qq") == []

    def test_range_query(self, blas_tree):
        out = blas_tree.range_query("dgemm", "dger")
        assert out == sorted(k for k in blas_routines() if "dgemm" <= k <= "dger")

    def test_range_query_single_point(self, blas_tree):
        assert blas_tree.range_query("dgemm", "dgemm") == ["dgemm"]

    def test_range_query_empty_band(self, blas_tree):
        assert blas_tree.range_query("q", "qz") == []

    def test_range_query_bad_bounds(self, blas_tree):
        with pytest.raises(ValueError):
            blas_tree.range_query("z", "a")

    def test_depth_of_empty_and_single(self):
        assert PGCPTree().depth() == -1
        assert build(["10"]).depth() == 0


class TestObservers:
    def test_create_hook_sees_every_node(self):
        tree = PGCPTree()
        created = []
        tree.on_create = lambda n: created.append(n.label)
        for k in paper_figure1_binary_keys():
            tree.insert(k)
        assert set(created) == tree.labels()

    def test_remove_hook_fires_on_contraction(self):
        tree = PGCPTree()
        removed = []
        tree.insert("1010")
        tree.insert("1001")
        tree.on_remove = lambda n: removed.append(n.label)
        tree.remove("1001")
        assert set(removed) == {"1001", "10"}


class TestPropertyBased:
    @settings(max_examples=200)
    @given(keys=st.lists(binary_keys, min_size=1, max_size=30))
    def test_invariants_after_any_insertion_sequence(self, keys):
        tree = build(keys)
        assert tree.keys() == set(keys)

    @settings(max_examples=100)
    @given(keys=st.lists(name_keys, min_size=1, max_size=25))
    def test_invariants_over_name_alphabet(self, keys):
        tree = build(keys)
        assert tree.keys() == set(keys)

    @settings(max_examples=100)
    @given(keys=st.lists(binary_keys, min_size=1, max_size=20, unique=True))
    def test_structural_nodes_have_two_plus_children_or_are_keys(self, keys):
        tree = build(keys)
        for node in tree.nodes():
            if not node.data and node is not tree.root:
                assert len(node.children) >= 2, (
                    f"structural non-root {node.label!r} with "
                    f"{len(node.children)} children"
                )

    @settings(max_examples=100)
    @given(
        keys=st.lists(binary_keys, min_size=2, max_size=20, unique=True),
        data=st.data(),
    )
    def test_remove_inverts_insert(self, keys, data):
        tree = build(keys)
        victim = data.draw(st.sampled_from(keys))
        survivors = [k for k in keys if k != victim]
        assert tree.remove(victim)
        tree.check_invariants()
        assert tree.keys() == set(survivors)

    @settings(max_examples=60)
    @given(keys=st.lists(binary_keys, min_size=1, max_size=20), prefix=binary_keys)
    def test_complete_agrees_with_filter(self, keys, prefix):
        tree = build(keys)
        assert tree.complete(prefix) == sorted(
            {k for k in keys if k.startswith(prefix)}
        )

    @settings(max_examples=60)
    @given(
        keys=st.lists(binary_keys, min_size=1, max_size=20),
        lo=binary_keys,
        hi=binary_keys,
    )
    def test_range_agrees_with_filter(self, keys, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        tree = build(keys)
        assert tree.range_query(lo, hi) == sorted({k for k in keys if lo <= k <= hi})

    @settings(max_examples=100)
    @given(keys=st.lists(binary_keys, min_size=2, max_size=20, unique=True))
    def test_parent_labels_are_pgcp_of_children(self, keys):
        """Definition 1 stated directly: each internal node's label equals
        the PGCP of every pair of its children's labels."""
        from repro.core.ids import pgcp

        tree = build(keys)
        for node in tree.nodes():
            kids = list(node.children.values())
            for i in range(len(kids)):
                for j in range(i + 1, len(kids)):
                    assert pgcp([kids[i].label, kids[j].label]) == node.label
