"""Alphabets: validation, ordering, identifier generation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.alphabet import BINARY, PRINTABLE, Alphabet, alphabet_for


class TestConstruction:
    def test_binary_has_two_digits(self):
        assert BINARY.size == 2
        assert list(BINARY) == ["0", "1"]

    def test_printable_covers_routine_names(self):
        for name in ("dgemm", "S3L_fft", "Pdgesv", "zher2k"):
            assert PRINTABLE.is_valid(name)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            Alphabet(digits=())

    def test_multichar_digit_rejected(self):
        with pytest.raises(ValueError):
            Alphabet(digits=("ab",))

    def test_duplicate_digit_rejected(self):
        with pytest.raises(ValueError):
            Alphabet(digits=("0", "0"))

    def test_len_and_contains(self):
        assert len(BINARY) == 2
        assert "0" in BINARY and "x" not in BINARY


class TestValidation:
    def test_validate_accepts_epsilon(self):
        assert BINARY.validate("") == ""

    def test_validate_rejects_foreign_digit(self):
        with pytest.raises(ValueError, match="not a digit"):
            BINARY.validate("10 2")

    def test_is_valid_mirror(self):
        assert BINARY.is_valid("0101")
        assert not BINARY.is_valid("012")


class TestOrdering:
    def test_natural_order_flags(self):
        assert BINARY.is_natural_order
        assert PRINTABLE.is_natural_order

    def test_rank(self):
        assert BINARY.rank("0") == 0
        assert BINARY.rank("1") == 1
        with pytest.raises(ValueError):
            BINARY.rank("2")

    def test_compare_natural(self):
        assert BINARY.compare("01", "10") == -1
        assert BINARY.compare("10", "10") == 0
        assert BINARY.compare("11", "10") == 1

    def test_custom_order_compare(self):
        # Reverse-ordered binary alphabet: '1' sorts before '0'.
        rev = Alphabet(digits=("1", "0"), name="rev")
        assert not rev.is_natural_order
        assert rev.compare("1", "0") == -1
        assert rev.sort_key("10") == (0, 1)

    @given(a=st.text(alphabet="01", max_size=8), b=st.text(alphabet="01", max_size=8))
    def test_compare_consistent_with_python_strings(self, a, b):
        assert BINARY.compare(a, b) == (a > b) - (a < b)


class TestGeneration:
    def test_random_identifier_length_and_digits(self):
        rng = random.Random(1)
        ident = PRINTABLE.random_identifier(rng, 16)
        assert len(ident) == 16
        assert PRINTABLE.is_valid(ident)

    def test_random_identifier_zero_length(self):
        assert BINARY.random_identifier(random.Random(1), 0) == ""

    def test_random_identifier_negative_raises(self):
        with pytest.raises(ValueError):
            BINARY.random_identifier(random.Random(1), -1)

    def test_deterministic_for_seed(self):
        a = BINARY.random_identifier(random.Random(7), 20)
        b = BINARY.random_identifier(random.Random(7), 20)
        assert a == b

    def test_alphabet_for_infers_cover(self):
        alpha = alphabet_for(["dgemm", "S3L"])
        for ch in "dgemmS3L_":
            if ch != "_":
                assert ch in alpha

    def test_alphabet_for_empty_collection(self):
        assert alphabet_for([]).size == 1
