"""Query model: match predicates and multi-attribute composition."""

from __future__ import annotations

import pytest

from repro.core.queries import (
    ExactQuery,
    MultiAttributeQuery,
    PrefixQuery,
    RangeQuery,
    attribute_key,
)


class TestExact:
    def test_match(self):
        q = ExactQuery("dgemm")
        assert q.matches("dgemm")
        assert not q.matches("dgemv")

    def test_describe(self):
        assert ExactQuery("x").describe() == "exact:x"


class TestPrefix:
    def test_match(self):
        q = PrefixQuery("dge")
        assert q.matches("dgemm") and q.matches("dgetrf")
        assert not q.matches("sgemm")

    def test_empty_prefix_matches_all(self):
        assert PrefixQuery("").matches("anything")


class TestRange:
    def test_match_inclusive_bounds(self):
        q = RangeQuery("dgemm", "dger")
        assert q.matches("dgemm") and q.matches("dger")
        assert q.matches("dgemv")
        assert not q.matches("dgesv")  # 'dges' > 'dger'

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery("z", "a")


class TestAttributeKey:
    def test_composition(self):
        assert attribute_key("os", "linux") == "os=linux"

    def test_separator_in_attribute_rejected(self):
        with pytest.raises(ValueError):
            attribute_key("o=s", "linux")


class TestMultiAttribute:
    def test_requires_clause(self):
        with pytest.raises(ValueError):
            MultiAttributeQuery(clauses={})

    def test_rebases_each_clause_kind(self):
        q = MultiAttributeQuery(
            clauses={
                "name": ExactQuery("dgemm"),
                "arch": PrefixQuery("x86"),
                "mem": RangeQuery("128", "512"),
            }
        )
        sub = q.attribute_queries()
        assert sub["name"] == ExactQuery("name=dgemm")
        assert sub["arch"] == PrefixQuery("arch=x86")
        assert sub["mem"] == RangeQuery("mem=128", "mem=512")

    def test_describe_is_sorted_and_stable(self):
        q = MultiAttributeQuery(
            clauses={"b": ExactQuery("2"), "a": ExactQuery("1")}
        )
        assert q.describe() == "multi:{a~exact:1, b~exact:2}"
