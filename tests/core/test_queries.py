"""Query model: match predicates, multi-attribute composition, and the
spec layer (parse / validate / canonical signature)."""

from __future__ import annotations

import json

import pytest

from repro.core.alphabet import BINARY
from repro.core.queries import (
    ExactQuery,
    MultiAttributeQuery,
    PrefixQuery,
    QuerySpecError,
    RangeQuery,
    attribute_key,
    parse_query,
    query_signature,
    validate_query,
)


class TestExact:
    def test_match(self):
        q = ExactQuery("dgemm")
        assert q.matches("dgemm")
        assert not q.matches("dgemv")

    def test_describe(self):
        assert ExactQuery("x").describe() == "exact:x"


class TestPrefix:
    def test_match(self):
        q = PrefixQuery("dge")
        assert q.matches("dgemm") and q.matches("dgetrf")
        assert not q.matches("sgemm")

    def test_empty_prefix_matches_all(self):
        assert PrefixQuery("").matches("anything")


class TestRange:
    def test_match_inclusive_bounds(self):
        q = RangeQuery("dgemm", "dger")
        assert q.matches("dgemm") and q.matches("dger")
        assert q.matches("dgemv")
        assert not q.matches("dgesv")  # 'dges' > 'dger'

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery("z", "a")


class TestAttributeKey:
    def test_composition(self):
        assert attribute_key("os", "linux") == "os=linux"

    def test_separator_in_attribute_rejected(self):
        with pytest.raises(ValueError):
            attribute_key("o=s", "linux")


class TestMultiAttribute:
    def test_requires_clause(self):
        with pytest.raises(ValueError):
            MultiAttributeQuery(clauses={})

    def test_rebases_each_clause_kind(self):
        q = MultiAttributeQuery(
            clauses={
                "name": ExactQuery("dgemm"),
                "arch": PrefixQuery("x86"),
                "mem": RangeQuery("128", "512"),
            }
        )
        sub = q.attribute_queries()
        assert sub["name"] == ExactQuery("name=dgemm")
        assert sub["arch"] == PrefixQuery("arch=x86")
        assert sub["mem"] == RangeQuery("mem=128", "mem=512")

    def test_describe_is_sorted_and_stable(self):
        q = MultiAttributeQuery(
            clauses={"b": ExactQuery("2"), "a": ExactQuery("1")}
        )
        assert q.describe() == "multi:{a~exact:1, b~exact:2}"


class TestParseQuery:
    def test_string_specs(self):
        assert parse_query("exact:dgemm") == ExactQuery("dgemm")
        assert parse_query("prefix:dge") == PrefixQuery("dge")
        assert parse_query("range:a:b") == RangeQuery("a", "b")

    def test_dict_specs(self):
        assert parse_query({"kind": "prefix", "prefix": "dg"}) == PrefixQuery("dg")
        multi = parse_query(
            {"kind": "multi", "clauses": {"os": "exact:linux", "mem": "range:1:2"}}
        )
        assert multi.clauses["os"] == ExactQuery("linux")
        assert multi.clauses["mem"] == RangeQuery("1", "2")

    def test_query_objects_pass_through(self):
        q = PrefixQuery("dg")
        assert parse_query(q) is q

    @pytest.mark.parametrize(
        "spec",
        [
            "noseparator",
            "glob:x*",
            "range:only-one-bound",
            {"kind": "range", "lo": "a"},  # missing hi
            {"kind": "glob"},
            {"kind": "multi", "clauses": {}},
            {"kind": "multi", "clauses": {"os": 42}},
            object(),
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(QuerySpecError):
            parse_query(spec)

    def test_empty_range_fails_at_parse_time(self):
        """Inverted bounds surface as a spec error when the spec is built,
        not as an arbitrary ValueError mid-walk."""
        with pytest.raises(QuerySpecError, match="empty range"):
            parse_query("range:z:a")
        with pytest.raises(QuerySpecError, match="empty range"):
            parse_query({"kind": "range", "lo": "z", "hi": "a"})

    def test_alphabet_moves_bound_validation_to_parse_time(self):
        assert parse_query("range:00:11", BINARY) == RangeQuery("00", "11")
        with pytest.raises(QuerySpecError):
            parse_query("range:00:2a", BINARY)
        with pytest.raises(QuerySpecError):
            parse_query("exact:xyz", BINARY)
        # The empty prefix (match everything) stays legal under any alphabet.
        assert parse_query("prefix:", BINARY) == PrefixQuery("")


class TestValidateQuery:
    def test_no_alphabet_checks_structure_only(self):
        q = ExactQuery("anything-at-all")
        assert validate_query(q) is q

    def test_multi_clauses_validated_through_rebasing(self):
        # The rebased key "os=0" contains '=' and 'o', both outside BINARY:
        # validation must reject the composed keys, not the raw values.
        q = MultiAttributeQuery(clauses={"os": ExactQuery("0")})
        with pytest.raises(QuerySpecError):
            validate_query(q, BINARY)


class TestQuerySignature:
    def test_canonical_forms(self):
        assert query_signature(ExactQuery("k")) == {"kind": "exact", "key": "k"}
        assert query_signature(PrefixQuery("p")) == {"kind": "prefix", "prefix": "p"}
        assert query_signature(RangeQuery("a", "b")) == {
            "kind": "range",
            "lo": "a",
            "hi": "b",
        }

    def test_multi_signature_sorts_clauses_and_serialises(self):
        q = MultiAttributeQuery(
            clauses={"b": ExactQuery("2"), "a": PrefixQuery("1")}
        )
        sig = query_signature(q)
        assert list(sig["clauses"]) == ["a", "b"]
        json.dumps(sig)  # must be JSON-serialisable as-is

    def test_signature_round_trips_through_parse(self):
        for q in (
            ExactQuery("k"),
            PrefixQuery(""),
            RangeQuery("a", "b"),
            MultiAttributeQuery(clauses={"os": ExactQuery("linux")}),
        ):
            assert parse_query(query_signature(q)) == q
