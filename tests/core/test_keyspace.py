"""Circular interval arithmetic (the ring's ownership rule)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.keyspace import (
    in_interval_closed_open,
    in_interval_open_closed,
    in_interval_open_open,
    ring_distance_clockwise,
)

ids = st.text(alphabet="abc", min_size=0, max_size=5)


class TestOpenClosed:
    def test_plain_interval(self):
        assert in_interval_open_closed("b", "a", "c")
        assert in_interval_open_closed("c", "a", "c")  # closed end
        assert not in_interval_open_closed("a", "a", "c")  # open start

    def test_wrapped_interval(self):
        # (x, b] with x > b wraps through the space's extremes.
        assert in_interval_open_closed("z", "x", "b")
        assert in_interval_open_closed("a", "x", "b")
        assert not in_interval_open_closed("m", "x", "b")

    def test_degenerate_full_ring(self):
        # (a, a] covers everything: a single-peer ring owns all keys.
        assert in_interval_open_closed("q", "a", "a")
        assert in_interval_open_closed("a", "a", "a")

    @given(x=ids, a=ids, b=ids)
    def test_complement_of_open_closed_is_open_closed(self, x, a, b):
        # The ring is partitioned: x ∈ (a,b] xor x ∈ (b,a] — except x==a==b.
        if a != b:
            assert in_interval_open_closed(x, a, b) != in_interval_open_closed(x, b, a)


class TestOpenOpen:
    def test_plain(self):
        assert in_interval_open_open("b", "a", "c")
        assert not in_interval_open_open("c", "a", "c")

    def test_wrapped(self):
        assert in_interval_open_open("z", "x", "b")
        assert not in_interval_open_open("x", "x", "b")

    def test_degenerate_everything_but_a(self):
        assert in_interval_open_open("b", "a", "a")
        assert not in_interval_open_open("a", "a", "a")


class TestClosedOpen:
    def test_plain(self):
        assert in_interval_closed_open("a", "a", "c")
        assert not in_interval_closed_open("c", "a", "c")

    def test_degenerate_everything(self):
        assert in_interval_closed_open("a", "a", "a")
        assert in_interval_closed_open("z", "a", "a")


class TestRingDistance:
    def test_forward(self):
        assert ring_distance_clockwise(2, 5, 16) == 3

    def test_wraps(self):
        assert ring_distance_clockwise(14, 2, 16) == 4

    def test_zero(self):
        assert ring_distance_clockwise(7, 7, 16) == 0

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            ring_distance_clockwise(0, 1, 0)
