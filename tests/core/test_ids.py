"""Identifier algebra: the exact laws of paper Section 2."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ids import (
    EPSILON,
    common_prefix_len,
    concat,
    gcp,
    gcp_many,
    is_prefix,
    is_proper_prefix,
    length,
    pgcp,
    prefix_set,
    prefixes,
)

binary_ids = st.text(alphabet="01", min_size=0, max_size=12)
binary_ids_nonempty = st.text(alphabet="01", min_size=1, max_size=12)


class TestPrefixPredicates:
    def test_epsilon_prefixes_everything(self):
        assert is_prefix("", "10101")
        assert is_prefix("", "")

    def test_identity_is_prefix_not_proper(self):
        assert is_prefix("101", "101")
        assert not is_proper_prefix("101", "101")

    def test_basic_proper_prefix(self):
        assert is_proper_prefix("10", "101")
        assert not is_proper_prefix("11", "101")

    def test_longer_never_prefixes_shorter(self):
        assert not is_prefix("1010", "101")

    @given(u=binary_ids, w=binary_ids_nonempty)
    def test_concatenation_makes_proper_prefix(self, u, w):
        assert is_proper_prefix(u, u + w)

    @given(u=binary_ids, v=binary_ids)
    def test_proper_prefix_iff_decomposition(self, u, v):
        # u proper-prefixes v  <=>  exists non-empty w with v = uw.
        if is_proper_prefix(u, v):
            w = v[len(u):]
            assert w and u + w == v


class TestGCP:
    def test_paper_example(self):
        # Section 3: "GCP(101, 100) = 10".
        assert gcp("101", "100") == "10"

    def test_disjoint(self):
        assert gcp("01", "10") == ""

    def test_identical(self):
        assert gcp("1011", "1011") == "1011"

    def test_one_prefixes_other(self):
        assert gcp("10", "10111") == "10"

    def test_gcp_many_three(self):
        assert gcp_many(["10101", "10111", "101111"]) == "101"

    def test_gcp_many_single(self):
        assert gcp_many(["abc"]) == "abc"

    def test_gcp_many_empty_raises(self):
        with pytest.raises(ValueError):
            gcp_many([])

    @given(a=binary_ids, b=binary_ids)
    def test_commutative(self, a, b):
        assert gcp(a, b) == gcp(b, a)

    @given(a=binary_ids, b=binary_ids, c=binary_ids)
    def test_associative(self, a, b, c):
        assert gcp(gcp(a, b), c) == gcp(a, gcp(b, c))

    @given(a=binary_ids, b=binary_ids)
    def test_result_prefixes_both(self, a, b):
        g = gcp(a, b)
        assert is_prefix(g, a) and is_prefix(g, b)

    @given(a=binary_ids, b=binary_ids)
    def test_maximality(self, a, b):
        # No longer shared prefix exists.
        g = gcp(a, b)
        if len(g) < min(len(a), len(b)):
            assert a[len(g)] != b[len(g)]

    @given(a=binary_ids)
    def test_idempotent(self, a):
        assert gcp(a, a) == a


class TestPGCP:
    def test_plain_divergence(self):
        assert pgcp(["101", "100"]) == "10"

    def test_one_id_prefixing_all_shortens(self):
        # GCP(10, 101) = 10 = one of the ids -> PGCP must drop a digit.
        assert pgcp(["10", "101"]) == "1"

    def test_single_identifier(self):
        assert pgcp(["101"]) == "10"

    def test_empty_id_in_collection_raises(self):
        with pytest.raises(ValueError):
            pgcp(["", "01"])

    @given(ids=st.lists(binary_ids_nonempty, min_size=2, max_size=6))
    def test_pgcp_is_proper_prefix_of_all(self, ids):
        p = pgcp(ids)
        for w in ids:
            assert is_prefix(p, w) and p != w


class TestPrefixes:
    def test_paper_example(self):
        # Section 3: Prefixes(10101) = {ε, 1, 10, 101, 1010}.
        assert prefixes("10101") == ["", "1", "10", "101", "1010"]

    def test_epsilon_has_no_proper_prefix(self):
        assert prefixes("") == []

    def test_prefix_set_matches_list(self):
        assert prefix_set("1010") == frozenset(prefixes("1010"))

    @given(w=binary_ids)
    def test_count_equals_length(self, w):
        assert len(prefixes(w)) == len(w)

    @given(w=binary_ids_nonempty)
    def test_all_proper(self, w):
        for p in prefixes(w):
            assert is_proper_prefix(p, w)


class TestConcatAndLength:
    @given(w=binary_ids)
    def test_epsilon_identity(self, w):
        # Section 2: wε = εw = w.
        assert concat(EPSILON, w) == w == concat(w, EPSILON)

    @given(u=binary_ids, v=binary_ids)
    def test_length_additive(self, u, v):
        assert length(concat(u, v)) == length(u) + length(v)

    def test_epsilon_length_zero(self):
        assert length(EPSILON) == 0

    @given(a=binary_ids, b=binary_ids)
    def test_common_prefix_len_matches_gcp(self, a, b):
        assert common_prefix_len(a, b) == len(gcp(a, b))
