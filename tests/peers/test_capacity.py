"""Capacity models: ranges, heterogeneity ratio, means."""

from __future__ import annotations

import random

import pytest

from repro.peers.capacity import DiscreteCapacity, FixedCapacity, UniformCapacity


class TestUniform:
    def test_paper_ratio_four(self):
        m = UniformCapacity(base=5, ratio=4.0)
        rng = random.Random(1)
        samples = [m.sample(rng) for _ in range(500)]
        assert min(samples) >= 5 and max(samples) <= 20
        # The full heterogeneity range is actually exercised.
        assert min(samples) == 5 and max(samples) == 20

    def test_mean(self):
        assert UniformCapacity(base=5, ratio=4.0).mean() == 12.5

    def test_bad_base(self):
        with pytest.raises(ValueError):
            UniformCapacity(base=0)

    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            UniformCapacity(ratio=0.5)

    def test_ratio_one_is_homogeneous(self):
        m = UniformCapacity(base=7, ratio=1.0)
        rng = random.Random(1)
        assert all(m.sample(rng) == 7 for _ in range(20))


class TestFixed:
    def test_constant(self):
        m = FixedCapacity(9)
        assert m.sample(random.Random(1)) == 9
        assert m.mean() == 9.0 and m.max_capacity == 9

    def test_positive_required(self):
        with pytest.raises(ValueError):
            FixedCapacity(0)


class TestDiscrete:
    def test_samples_from_values(self):
        m = DiscreteCapacity(values=(2, 4))
        rng = random.Random(1)
        assert {m.sample(rng) for _ in range(100)} == {2, 4}

    def test_weighted_mean(self):
        m = DiscreteCapacity(values=(10, 20), weights=(3, 1))
        assert m.mean() == pytest.approx(12.5)

    def test_unweighted_mean(self):
        assert DiscreteCapacity(values=(1, 3)).mean() == 2.0

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            DiscreteCapacity(values=(1, 2), weights=(1,))

    def test_nonpositive_value_rejected(self):
        with pytest.raises(ValueError):
            DiscreteCapacity(values=(0,))
