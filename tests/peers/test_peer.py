"""Peer: capacity accounting, per-node load history, node hosting."""

from __future__ import annotations

import pytest

from repro.peers.peer import Peer


class TestCapacityAccounting:
    def test_processes_up_to_capacity(self):
        p = Peer(id="a", capacity=2)
        assert p.try_process("n1")
        assert p.try_process("n2")
        assert not p.try_process("n3")  # exhausted -> ignored

    def test_rejected_requests_still_counted_in_node_load(self):
        """A node's popularity is observed even when the peer drops the
        request — otherwise MLT could never react to overload."""
        p = Peer(id="a", capacity=1)
        p.try_process("n")
        p.try_process("n")
        assert p.node_load["n"] == 2
        assert p.total_processed == 1 and p.total_rejected == 1

    def test_load_sums_over_nodes(self):
        p = Peer(id="a", capacity=10)
        p.try_process("n1")
        p.try_process("n1")
        p.try_process("n2")
        assert p.load == 3

    def test_saturated_flag(self):
        p = Peer(id="a", capacity=1)
        assert not p.saturated
        p.try_process("n")
        assert p.saturated

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Peer(id="a", capacity=0)


class TestTimeUnits:
    def test_end_unit_rolls_history_and_resets_budget(self):
        p = Peer(id="a", capacity=2)
        p.try_process("n")
        p.end_time_unit()
        assert p.last_load_of("n") == 1
        assert p.node_load == {} and p.used == 0
        assert p.try_process("n")  # budget refreshed

    def test_last_load_of_unknown_node(self):
        assert Peer(id="a", capacity=1).last_load_of("x") == 0

    def test_history_is_one_unit_deep(self):
        p = Peer(id="a", capacity=5)
        p.try_process("n")
        p.end_time_unit()
        p.end_time_unit()
        assert p.last_load_of("n") == 0


class TestNodeHosting:
    def test_host_and_drop(self):
        p = Peer(id="a", capacity=1)
        p.host_node("n")
        assert "n" in p.nodes
        p.drop_node("n")
        assert "n" not in p.nodes

    def test_drop_clears_open_unit_counter(self):
        """A migrated node's in-flight counter leaves with it, keeping the
        source peer's per-unit accounting consistent."""
        p = Peer(id="a", capacity=5)
        p.host_node("n")
        p.try_process("n")
        p.drop_node("n")
        assert "n" not in p.node_load

    def test_drop_missing_is_noop(self):
        Peer(id="a", capacity=1).drop_node("ghost")


class TestIdentity:
    def test_peers_compare_by_identity(self):
        a = Peer(id="x", capacity=1)
        b = Peer(id="x", capacity=1)
        assert a != b and a == a
        assert len({a, b}) == 2
