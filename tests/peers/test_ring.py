"""Ring: membership, circular order, repositioning, invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.peers.peer import Peer
from repro.peers.ring import DuplicatePeerError, Ring


def ring_of(*ids):
    r = Ring()
    for pid in ids:
        r.join(Peer(id=pid, capacity=10))
    return r


class TestMembership:
    def test_join_and_len(self):
        r = ring_of("b", "a")
        assert len(r) == 2 and "a" in r and "c" not in r

    def test_duplicate_join_rejected(self):
        r = ring_of("a")
        with pytest.raises(ValueError):
            r.join(Peer(id="a", capacity=1))

    def test_duplicate_join_raises_domain_error_with_id(self):
        r = ring_of("a")
        with pytest.raises(DuplicatePeerError) as exc_info:
            r.join(Peer(id="a", capacity=1))
        assert exc_info.value.peer_id == "a"
        assert "'a'" in str(exc_info.value)

    def test_duplicate_reposition_raises_domain_error(self):
        r = ring_of("b", "d")
        with pytest.raises(DuplicatePeerError):
            r.reposition(r.peer("d"), "b")

    def test_id_at_and_peer_at(self):
        r = ring_of("c", "a", "b")
        assert [r.id_at(i) for i in range(3)] == ["a", "b", "c"]
        assert r.peer_at(1).id == "b"

    def test_leave_returns_peer(self):
        r = ring_of("a", "b")
        p = r.leave("a")
        assert p.id == "a" and len(r) == 1

    def test_leave_unknown_raises(self):
        with pytest.raises(KeyError):
            ring_of("a").leave("zz")

    def test_iteration_in_id_order(self):
        r = ring_of("c", "a", "b")
        assert [p.id for p in r] == ["a", "b", "c"]

    def test_min_max(self):
        r = ring_of("m", "a", "z")
        assert r.min_peer().id == "a" and r.max_peer().id == "z"


class TestCircularOrder:
    def test_successor_of_key_basic(self):
        r = ring_of("b", "d", "f")
        assert r.successor_of_key("c").id == "d"
        assert r.successor_of_key("d").id == "d"  # inclusive

    def test_successor_of_key_wraps_to_min(self):
        # Paper: "if n > P_max, the peer running n is P_min".
        r = ring_of("b", "d", "f")
        assert r.successor_of_key("z").id == "b"

    def test_peer_successor_predecessor(self):
        r = ring_of("b", "d", "f")
        assert r.successor("d").id == "f"
        assert r.successor("f").id == "b"
        assert r.predecessor("b").id == "f"

    def test_single_peer_is_own_neighbour(self):
        r = ring_of("a")
        assert r.successor("a").id == "a"
        assert r.predecessor("a").id == "a"

    def test_aggregate_capacity(self):
        r = Ring()
        r.join(Peer(id="a", capacity=3))
        r.join(Peer(id="b", capacity=7))
        assert r.aggregate_capacity() == 10


class TestReposition:
    def test_moves_within_neighbours(self):
        r = ring_of("b", "d", "f")
        p = r.peer("d")
        r.reposition(p, "e")
        assert p.id == "e"
        assert [q.id for q in r] == ["b", "e", "f"]
        r.check_invariants()

    def test_same_id_is_noop(self):
        r = ring_of("b", "d")
        r.reposition(r.peer("d"), "d")
        assert "d" in r

    def test_collision_rejected(self):
        r = ring_of("b", "d")
        with pytest.raises(ValueError):
            r.reposition(r.peer("d"), "b")

    def test_crossing_a_neighbour_rejected(self):
        r = ring_of("b", "d", "f")
        with pytest.raises(ValueError, match="between neighbours"):
            r.reposition(r.peer("d"), "g")  # would pass f

    def test_wrapped_arc_reposition(self):
        # The min peer may slide across the space origin (MLT on the pair
        # containing the root node's host).
        r = ring_of("b", "d", "f")
        p = r.peer("b")  # pred is "f": arc (f..d) wraps
        r.reposition(p, "z")  # z > f: still inside the wrapped arc
        assert [q.id for q in r] == ["d", "f", "z"]
        r.check_invariants()

    def test_single_peer_repositions_freely(self):
        r = ring_of("m")
        r.reposition(r.peer("m"), "q")
        assert "q" in r


class TestVersionAndCache:
    def test_version_bumps_on_membership_change(self):
        r = Ring()
        v0 = r.version
        r.join(Peer(id="b", capacity=1))
        r.join(Peer(id="d", capacity=1))
        assert r.version == v0 + 2
        r.reposition(r.peer("d"), "e")
        assert r.version == v0 + 3
        r.leave("e")
        assert r.version == v0 + 4

    def test_noop_reposition_keeps_version(self):
        r = ring_of("b")
        v = r.version
        r.reposition(r.peer("b"), "b")
        assert r.version == v

    def test_successor_cache_invalidated_by_membership_change(self):
        r = ring_of("b", "d")
        assert r.successor_of_key("c").id == "d"
        assert r.successor_of_key("c").id == "d"  # cached
        r.join(Peer(id="c", capacity=1))
        assert r.successor_of_key("c").id == "c"  # not the stale entry
        r.leave("c")
        assert r.successor_of_key("c").id == "d"


class TestPropertyBased:
    @settings(max_examples=60)
    @given(ids=st.sets(st.text(alphabet="abcdef", min_size=1, max_size=6),
                       min_size=1, max_size=20))
    def test_invariants_after_joins(self, ids):
        r = Ring()
        for pid in ids:
            r.join(Peer(id=pid, capacity=1))
        r.check_invariants()

    @settings(max_examples=60)
    @given(
        ids=st.sets(st.text(alphabet="abcdef", min_size=1, max_size=6),
                    min_size=2, max_size=20),
        seed=st.integers(0, 2**16),
    )
    def test_invariants_under_churn(self, ids, seed):
        rng = random.Random(seed)
        r = Ring()
        alive = []
        for pid in sorted(ids):
            r.join(Peer(id=pid, capacity=1))
            alive.append(pid)
            if len(alive) > 1 and rng.random() < 0.4:
                victim = alive.pop(rng.randrange(len(alive)))
                r.leave(victim)
            r.check_invariants()

    @settings(max_examples=60)
    @given(ids=st.sets(st.text(alphabet="abc", min_size=1, max_size=4),
                       min_size=1, max_size=12),
           key=st.text(alphabet="abc", min_size=0, max_size=5))
    def test_successor_of_key_is_ceiling_with_wrap(self, ids, key):
        r = Ring()
        for pid in ids:
            r.join(Peer(id=pid, capacity=1))
        expected = min((i for i in ids if i >= key), default=min(ids))
        assert r.successor_of_key(key).id == expected
