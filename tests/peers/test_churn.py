"""Churn models: expectations, bounds, presets."""

from __future__ import annotations

import random

import pytest

from repro.peers.churn import DYNAMIC, FROZEN, STABLE, ChurnModel


class TestChurnModel:
    def test_frozen_generates_nothing(self):
        rng = random.Random(1)
        assert FROZEN.joins(100, rng) == 0
        assert FROZEN.leaves(100, rng) == 0
        assert FROZEN.is_stable

    def test_dynamic_is_ten_percent(self):
        assert DYNAMIC.join_fraction == 0.10
        assert DYNAMIC.leave_fraction == 0.10

    def test_expectation_of_stochastic_rounding(self):
        rng = random.Random(42)
        m = ChurnModel(join_fraction=0.05, leave_fraction=0.0)
        total = sum(m.joins(100, rng) for _ in range(2000))
        assert total == pytest.approx(2000 * 5, rel=0.1)

    def test_integral_rate_is_exact(self):
        rng = random.Random(1)
        m = ChurnModel(join_fraction=0.10, leave_fraction=0.10)
        assert all(m.joins(100, rng) == 10 for _ in range(10))

    def test_leaves_never_empty_the_ring(self):
        rng = random.Random(1)
        m = ChurnModel(join_fraction=0.0, leave_fraction=0.9)
        assert m.leaves(1, rng) == 0
        assert m.leaves(2, rng) <= 1

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            ChurnModel(join_fraction=1.0)
        with pytest.raises(ValueError):
            ChurnModel(leave_fraction=-0.1)

    def test_stable_preset_is_low(self):
        assert STABLE.join_fraction <= 0.02
        assert not STABLE.is_stable  # low but nonzero membership change
