"""Trace record/replay: the repro-trace/1 schema and its determinism
guarantees (record -> replay reproduces a run's metrics byte-for-byte)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import run_metrics_dict
from repro.experiments.runner import record_single, replay_single, run_single
from repro.lb.kchoices import KChoices
from repro.lb.mlt import MLT
from repro.lb.nolb import NoLB
from repro.peers.churn import DYNAMIC
from repro.workloads.traces import (
    TRACE_SCHEMA,
    TraceError,
    TraceRecorder,
    TraceUnit,
    WorkloadTrace,
)


def small_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        n_peers=30,
        total_units=12,
        growth_units=4,
        load_fraction=0.3,
        churn=DYNAMIC,
        workload="flash_crowd:S3L:onset=5:half_life=3",
        lb=MLT(),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def metrics_bytes(result) -> str:
    return json.dumps(run_metrics_dict(result), sort_keys=True)


class TestSchema:
    def _trace(self) -> WorkloadTrace:
        rec = TraceRecorder(seed=7, run_index=2, meta={"note": "test"})
        rec.begin_unit()
        rec.join(12)
        rec.leave(3)
        rec.registration("dgemm")
        rec.request("dgemm", "dg")
        rec.begin_unit()
        rec.request("S3L_fft", "S3L_")
        return rec.trace()

    def test_round_trip_preserves_everything(self):
        trace = self._trace()
        again = WorkloadTrace.loads(trace.dumps())
        assert again.seed == 7 and again.run_index == 2
        assert again.meta == {"note": "test"}
        assert again.units == trace.units
        assert again.total_requests == 2

    def test_serialisation_is_byte_stable(self):
        trace = self._trace()
        assert trace.dumps() == WorkloadTrace.loads(trace.dumps()).dumps()

    def test_header_carries_schema_tag(self):
        header = json.loads(self._trace().dumps().splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA

    def test_dump_load_file(self, tmp_path):
        path = self._trace().dump(tmp_path / "t.jsonl")
        assert WorkloadTrace.load(path).units == self._trace().units

    def test_rejects_unknown_schema(self):
        text = json.dumps({"schema": "repro-trace/99", "seed": 1}) + "\n"
        with pytest.raises(TraceError, match="repro-trace/99"):
            WorkloadTrace.loads(text)

    def test_rejects_empty_and_garbled(self):
        with pytest.raises(TraceError):
            WorkloadTrace.loads("")
        with pytest.raises(TraceError, match="not JSON"):
            WorkloadTrace.loads("{nope")

    def test_rejects_out_of_order_units(self):
        trace = self._trace()
        lines = trace.dumps().splitlines()
        with pytest.raises(TraceError, match="expected unit"):
            WorkloadTrace.loads("\n".join([lines[0], lines[2]]))

    def test_rejects_malformed_unit(self):
        header = json.dumps({"schema": TRACE_SCHEMA, "seed": 1})
        with pytest.raises(TraceError, match="malformed"):
            WorkloadTrace.loads(header + '\n{"u":0,"joins":[]}')

    def test_recorder_requires_open_unit(self):
        with pytest.raises(TraceError):
            TraceRecorder(seed=1).request("k", "e")


class TestRecordReplay:
    def test_recording_does_not_perturb_the_run(self):
        cfg = small_config()
        plain = run_single(cfg, 0)
        recorded, _ = record_single(cfg, 0)
        assert metrics_bytes(plain) == metrics_bytes(recorded)

    def test_replay_reproduces_metrics_byte_identically(self):
        cfg = small_config()
        result, trace = record_single(cfg, 0)
        replayed = replay_single(cfg, WorkloadTrace.loads(trace.dumps()))
        assert metrics_bytes(replayed) == metrics_bytes(result)

    def test_replay_is_deterministic_across_runs(self):
        cfg = small_config()
        _, trace = record_single(cfg, 0)
        a = replay_single(cfg, trace)
        b = replay_single(cfg, trace)
        assert metrics_bytes(a) == metrics_bytes(b)

    def test_replay_reissues_identical_request_sequences(self):
        cfg = small_config()
        _, trace = record_single(cfg, 0)
        _, again = record_single(cfg, 0)
        assert trace.dumps() == again.dumps()
        per_unit = [len(u.requests) for u in trace.units]
        replayed = replay_single(cfg, trace)
        assert [u.issued for u in replayed.units] == per_unit

    def test_replay_uses_the_trace_seed_not_the_configs(self):
        cfg = small_config(seed=99)
        result, trace = record_single(cfg, 0)
        assert trace.seed == 99
        # A replaying config with a different (default) seed must still
        # reproduce the recording: the trace header pins the seed.
        other = small_config()
        assert other.seed != 99
        assert metrics_bytes(replay_single(other, trace)) == metrics_bytes(result)

    def test_run_index_round_trips_through_the_trace(self):
        cfg = small_config()
        result, trace = record_single(cfg, run_index=3)
        assert trace.run_index == 3
        assert metrics_bytes(replay_single(cfg, trace)) == metrics_bytes(result)

    def test_replay_under_other_balancers_keeps_traffic_fixed(self):
        cfg = small_config()
        _, trace = record_single(cfg, 0)
        by_lb = {
            lb.name: replay_single(cfg.with_lb(lb), trace)
            for lb in (MLT(), KChoices(k=4), NoLB())
        }
        issued = {r.total_issued for r in by_lb.values()}
        assert issued == {trace.total_requests}
        satisfied = {name: r.total_satisfied for name, r in by_lb.items()}
        assert len(set(satisfied.values())) > 1  # the system under test varies

    def test_cannot_record_and_replay_at_once(self):
        cfg = small_config()
        _, trace = record_single(cfg, 0)
        with pytest.raises(ValueError):
            run_single(cfg, recorder=TraceRecorder(seed=1), replay=trace)


class TestNewUnitMetrics:
    def test_imbalance_and_tail_hops_populate(self):
        result = run_single(small_config(), 0)
        busy = [u for u in result.units if u.issued]
        assert busy
        for u in busy:
            assert u.load_imbalance >= 1.0
            assert sum(u.hop_histogram.values()) == u.satisfied
            assert u.p95_hops <= u.p99_hops <= max(u.hop_histogram, default=0)

    def test_unit_trace_shape(self):
        _, trace = record_single(small_config(), 0)
        unit0 = trace.units[0]
        assert isinstance(unit0, TraceUnit)
        assert all(isinstance(c, int) for c in unit0.joins)
        assert all(isinstance(i, int) for i in unit0.leaves)
        assert unit0.registrations  # growth happens in unit 0
