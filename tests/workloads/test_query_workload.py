"""The ``queries:`` workload axis: spec parsing, sampling, trace events,
and end-to-end record/replay through the experiment runner."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.queries import QuerySpecError
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import run_metrics_dict
from repro.experiments.runner import record_single, replay_single, run_single
from repro.lb.mlt import MLT
from repro.peers.churn import DYNAMIC
from repro.workloads.queries import (
    QUERY_EVENT_ARITY,
    QueryWorkload,
    parse_queries,
    parse_query_event,
    queries_signature,
    query_from_event,
)
from repro.workloads.traces import TraceUnit, WorkloadTrace


class TestParseQueries:
    def test_none_means_no_axis(self):
        assert parse_queries(None) is None

    def test_bare_kinds(self):
        for kind in ("mixed", "prefix", "range", "exact"):
            plan = parse_queries(kind)
            assert plan.kind == kind
            assert plan.n_per_unit == 4  # the default

    def test_string_options(self):
        plan = parse_queries("prefix:n=6:len=3")
        assert (plan.kind, plan.n_per_unit, plan.prefix_len) == ("prefix", 6, 3)
        assert parse_queries("range:n=2:span=32").range_span == 32

    def test_dict_spec_accepts_short_and_full_names(self):
        assert parse_queries({"kind": "exact", "n": 2}).n_per_unit == 2
        assert parse_queries({"kind": "exact", "n_per_unit": 2}).n_per_unit == 2

    def test_workload_passes_through(self):
        plan = QueryWorkload(kind="range")
        assert parse_queries(plan) is plan

    @pytest.mark.parametrize(
        "spec",
        [
            "glob",  # unknown kind
            "mixed:n=0",  # n must be >= 1
            "range:span=0",  # span must be >= 1
            "prefix:len=-1",  # len must be >= 0
            "prefix:n=two",  # non-integer option
            "prefix:width=3",  # unknown option
            {"kind": "prefix", "widt": 3},  # unknown dict field
            42,  # not a spec at all
        ],
    )
    def test_bad_specs_fail_at_parse_time(self, spec):
        with pytest.raises(QuerySpecError):
            parse_queries(spec)

    def test_signature_is_canonical(self):
        sig = queries_signature(parse_queries("mixed:n=6"))
        assert sig == {
            "kind": "mixed",
            "n_per_unit": 6,
            "prefix_len": 2,
            "range_span": 16,
        }
        json.dumps(sig)  # must be JSON-serialisable as-is


class TestSampleUnit:
    KEYS = sorted(f"svc{i:03d}" for i in range(40))

    def test_empty_key_set_yields_no_events(self):
        plan = QueryWorkload()
        assert plan.sample_unit(random.Random(0), []) == []

    def test_deterministic_for_a_seed(self):
        plan = QueryWorkload(kind="mixed", n_per_unit=9)
        a = plan.sample_unit(random.Random(3), self.KEYS)
        b = plan.sample_unit(random.Random(3), self.KEYS)
        assert a == b and len(a) == 9

    def test_mixed_cycles_through_kinds(self):
        plan = QueryWorkload(kind="mixed", n_per_unit=6)
        kinds = [e[0] for e in plan.sample_unit(random.Random(1), self.KEYS)]
        assert kinds == ["prefix", "range", "exact"] * 2

    def test_events_are_well_formed(self):
        for kind in ("prefix", "range", "exact"):
            plan = QueryWorkload(kind=kind, n_per_unit=8, range_span=5)
            for event in plan.sample_unit(random.Random(2), self.KEYS):
                assert event[0] == kind
                # sample_unit omits the entry label (the runner appends it).
                assert len(event) == QUERY_EVENT_ARITY[kind]
                if kind == "range":
                    assert event[1] <= event[2]
                    assert event[1] in self.KEYS and event[2] in self.KEYS


class TestTraceEvents:
    def test_round_trip_through_parse(self):
        for event in (
            ["prefix", "dge", "dg"],
            ["range", "a", "b", ""],
            ["exact", "dgemm", "d"],
        ):
            assert parse_query_event(event) == event
            query, entry = query_from_event(event)
            assert entry == event[-1]
            assert query.matches(event[1])

    @pytest.mark.parametrize(
        "event",
        [
            [],
            ["glob", "a", "b"],
            ["prefix", "only-one-payload-missing-entry"],
            ["range", "a", "b"],  # missing entry
            ["range", "z", "a", ""],  # empty range
            ["exact", "a", "b", "c"],  # too many
        ],
    )
    def test_malformed_events_rejected(self, event):
        with pytest.raises(QuerySpecError):
            parse_query_event(event)

    def test_trace_unit_carries_queries(self):
        unit = TraceUnit(queries=[["prefix", "dg", ""]])
        record = unit.as_record(0)
        assert record["queries"] == [["prefix", "dg", ""]]
        assert TraceUnit.from_record(record).queries == [["prefix", "dg", ""]]

    def test_query_free_units_keep_the_old_byte_layout(self):
        record = TraceUnit().as_record(0)
        assert "queries" not in record

    def test_malformed_trace_queries_fail_at_load_time(self):
        from repro.workloads.traces import TraceError

        record = TraceUnit().as_record(0)
        record["queries"] = [["range", "z", "a", ""]]
        with pytest.raises(TraceError):
            TraceUnit.from_record(record)


def query_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        n_peers=30,
        total_units=10,
        growth_units=4,
        load_fraction=0.2,
        churn=DYNAMIC,
        workload="flash_crowd:S3L:onset=5:half_life=3",
        lb=MLT(),
        queries="mixed:n=3",
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestRunnerIntegration:
    def test_query_metrics_populate(self):
        result = run_single(query_config(seed=5))
        issued = sum(u.queries_issued for u in result.units)
        assert issued > 0
        assert sum(u.query_results for u in result.units) >= 0
        served = sum(u.queries_satisfied for u in result.units)
        assert served + sum(u.queries_dropped for u in result.units) == issued

    def test_signature_gains_queries_key_only_with_a_plan(self):
        assert "queries" in query_config().signature()
        assert "queries" not in query_config(queries=None).signature()

    def test_query_free_runs_are_unchanged(self):
        """Adding the axis must not perturb runs that don't use it: the
        query rng stream only exists when a plan is configured."""
        a = run_metrics_dict(run_single(query_config(queries=None, seed=5)))
        b = run_metrics_dict(run_single(query_config(queries=None, seed=5)))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert all(u["queries_issued"] == 0 for u in a["units"])

    def test_record_replay_reproduces_query_metrics(self):
        config = query_config(seed=9)
        recorded, trace = record_single(config)
        assert any(u.queries for u in trace.units)
        replayed = replay_single(config, trace)
        assert json.dumps(
            run_metrics_dict(recorded), sort_keys=True
        ) == json.dumps(run_metrics_dict(replayed), sort_keys=True)

    def test_trace_queries_replay_under_a_query_free_config(self):
        """The trace is the source of truth: its query events replay even
        when the replaying config has no query plan of its own."""
        recorded, trace = record_single(query_config(seed=9))
        replayed = replay_single(query_config(queries=None), trace)
        assert sum(u.queries_issued for u in replayed.units) == sum(
            u.queries_issued for u in recorded.units
        )

    def test_query_fields_round_trip_through_the_store_serde(self):
        from repro.experiments.metrics import (
            run_result_from_dict,
            run_result_to_dict,
        )

        result = run_single(query_config(seed=5))
        doc = run_result_to_dict(result)
        assert any(u["queries_issued"] for u in doc["units"])
        again = run_result_to_dict(run_result_from_dict(doc))
        assert json.dumps(doc, sort_keys=True) == json.dumps(again, sort_keys=True)

    def test_pre_query_documents_still_load(self):
        from repro.experiments.metrics import (
            run_result_from_dict,
            run_result_to_dict,
        )

        doc = run_result_to_dict(run_single(query_config(queries=None, seed=5)))
        for unit in doc["units"]:
            for key in ("queries_issued", "queries_satisfied", "queries_dropped",
                        "query_results", "query_logical_hops",
                        "query_physical_hops", "query_hop_histogram"):
                del unit[key]
        loaded = run_result_from_dict(doc)
        assert all(
            u.queries_issued == 0 and u.query_hop_histogram == {}
            for u in loaded.units
        )

    def test_trace_serialisation_round_trips_query_events(self):
        _, trace = record_single(query_config(seed=9))
        again = WorkloadTrace.loads(trace.dumps())
        assert [u.queries for u in again.units] == [u.queries for u in trace.units]
