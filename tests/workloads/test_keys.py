"""Key corpora: naming schemes, sizes, prefix structure."""

from __future__ import annotations

import random

import pytest

from repro.core.alphabet import PRINTABLE
from repro.workloads.keys import (
    blas_routines,
    grid_service_corpus,
    keys_with_prefix,
    lapack_routines,
    paper_figure1_binary_keys,
    random_binary_keys,
    s3l_routines,
    scalapack_routines,
)


class TestCorpora:
    def test_blas_has_typed_names(self):
        blas = blas_routines()
        for name in ("dgemm", "saxpy", "zherk", "ctrsm"):
            assert name in blas

    def test_type_prefixes_cover_four_types(self):
        assert {n[0] for n in blas_routines()} == {"s", "d", "c", "z"}

    def test_scalapack_all_start_with_P(self):
        # Figure 8: "the ScaLapack library whose functions begin with 'P'".
        names = scalapack_routines()
        assert names and all(n.startswith("P") for n in names)
        assert "Pdgesv" in names

    def test_s3l_all_start_with_S3L(self):
        # Figure 8: "Most of S3L routines are named by a string beginning
        # by 'S3L'".
        names = s3l_routines()
        assert names and all(n.startswith("S3L_") for n in names)

    def test_full_corpus_size_near_paper(self):
        """~1000 tree nodes in the paper; the corpus plus structural nodes
        lands in that ballpark."""
        corpus = grid_service_corpus()
        assert 600 <= len(corpus) <= 1500

    def test_corpus_is_sorted_and_unique(self):
        corpus = grid_service_corpus()
        assert corpus == sorted(set(corpus))

    def test_corpus_valid_under_printable_alphabet(self):
        for k in grid_service_corpus():
            assert PRINTABLE.is_valid(k), k

    def test_lapack_disjoint_prefix_families(self):
        # LAPACK and ScaLAPACK names must not collide (P prefix separates).
        assert not set(lapack_routines()) & set(scalapack_routines())

    def test_figure1_keys_exact(self):
        assert paper_figure1_binary_keys() == ["01", "10101", "10111", "101111"]


class TestGenerators:
    def test_random_binary_keys_distinct(self):
        keys = random_binary_keys(random.Random(1), 50, length=10)
        assert len(keys) == 50 == len(set(keys))
        assert all(len(k) == 10 and set(k) <= {"0", "1"} for k in keys)

    def test_random_binary_keys_exhaustion_guard(self):
        with pytest.raises(ValueError):
            random_binary_keys(random.Random(1), 10, length=3)

    def test_keys_with_prefix(self):
        corpus = grid_service_corpus()
        s3l = keys_with_prefix(corpus, "S3L")
        assert s3l == s3l_routines()
