"""Time-varying workload dynamics: flash crowds, diurnal cycles,
adversarial prefix stacking, and phase-spliced composition."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.workloads.dynamics import (
    AdversarialPrefixStacking,
    DiurnalSchedule,
    FlashCrowd,
    MixedSchedule,
    SchedulePhase,
    SteadySchedule,
    as_schedule,
)
from repro.workloads.requests import (
    RequestGenerator,
    UniformRequests,
    WorkloadSchedule,
    ZipfRequests,
)

KEYS = ["Pdgesv", "S3L_fft", "S3L_mat_mult", "S3L_sort", "daxpy", "dgemm", "sgemm"]


class TestProtocols:
    def test_generators_satisfy_protocol(self):
        assert isinstance(UniformRequests(), RequestGenerator)
        assert isinstance(AdversarialPrefixStacking("S3L"), RequestGenerator)

    def test_schedules_satisfy_schedule_protocol(self):
        for schedule in (
            SteadySchedule(UniformRequests()),
            FlashCrowd("S3L"),
            DiurnalSchedule(),
            MixedSchedule([SchedulePhase(0, 10, UniformRequests())]),
        ):
            assert isinstance(schedule, WorkloadSchedule)

    def test_generator_is_not_a_schedule(self):
        assert not isinstance(UniformRequests(), WorkloadSchedule)

    def test_as_schedule_wraps_and_passes_through(self):
        steady = as_schedule(ZipfRequests(1.1))
        assert isinstance(steady, SteadySchedule)
        crowd = FlashCrowd("S3L")
        assert as_schedule(crowd) is crowd

    def test_as_schedule_rejects_non_workloads(self):
        with pytest.raises(TypeError, match="neither"):
            as_schedule(object())
        with pytest.raises(TypeError):
            SteadySchedule(42)


class TestFlashCrowd:
    def test_quiet_before_onset(self):
        crowd = FlashCrowd("S3L", onset=50)
        assert crowd.intensity(0) == 0.0
        assert crowd.rate_multiplier(0) == 1.0

    def test_burst_then_relaxation(self):
        crowd = FlashCrowd("S3L", onset=10, peak=0.9, half_life=5, rate_surge=3.0)
        assert crowd.intensity(10) == pytest.approx(0.9)
        assert crowd.intensity(15) == pytest.approx(0.45)
        assert crowd.rate_multiplier(10) == pytest.approx(3.0)
        assert crowd.rate_multiplier(10_000) == pytest.approx(1.0, abs=1e-6)

    def test_burst_concentrates_on_prefix(self):
        rng = random.Random(3)
        crowd = FlashCrowd("S3L", onset=0, peak=0.95, half_life=1e9)
        counts = Counter(crowd.sample(0, rng, KEYS) for _ in range(4000))
        hot = sum(counts[k] for k in KEYS if k.startswith("S3L"))
        assert hot / 4000 > 0.9

    def test_pre_onset_draws_from_base(self):
        rng = random.Random(4)
        crowd = FlashCrowd("S3L", onset=100)
        counts = Counter(crowd.sample(0, rng, KEYS) for _ in range(3500))
        for key in KEYS:  # uniform-ish: every key shows up
            assert counts[key] > 300

    def test_phase_windows_cover_run(self):
        crowd = FlashCrowd("S3L", onset=20, half_life=4)
        windows = crowd.phase_windows(100)
        assert windows[0] == ("pre-crowd", 0, 20)
        assert windows[1][1] == 20
        assert windows[-1][2] == 100
        for (_, _, e), (_, s, _) in zip(windows, windows[1:]):
            assert e == s  # contiguous

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd("S3L", peak=0.0)
        with pytest.raises(ValueError):
            FlashCrowd("S3L", half_life=0)
        with pytest.raises(ValueError):
            FlashCrowd("S3L", rate_surge=0.5)
        with pytest.raises(ValueError):
            FlashCrowd("S3L", onset=-1)


class TestDiurnal:
    def test_rate_swings_around_one(self):
        sched = DiurnalSchedule(period=24, amplitude=0.5)
        assert sched.rate_multiplier(0) == pytest.approx(1.5)   # peak at 0
        assert sched.rate_multiplier(12) == pytest.approx(0.5)  # trough
        assert sched.rate_multiplier(24) == pytest.approx(1.5)  # next peak

    def test_mean_rate_is_nominal(self):
        sched = DiurnalSchedule(period=20, amplitude=0.8)
        mean = sum(sched.rate_multiplier(u) for u in range(20)) / 20
        assert mean == pytest.approx(1.0, abs=1e-9)

    def test_delegates_sampling_to_inner(self):
        rng = random.Random(5)
        sched = DiurnalSchedule(inner=AdversarialPrefixStacking("S3L"))
        assert sched.sample(0, rng, KEYS).startswith("S3L")

    def test_rate_composes_with_inner_schedule(self):
        crowd = FlashCrowd("S3L", onset=0, half_life=1e9, rate_surge=2.0)
        sched = DiurnalSchedule(inner=crowd, period=24, amplitude=0.5)
        assert sched.rate_multiplier(0) == pytest.approx(1.5 * 2.0)

    def test_phase_windows_alternate(self):
        windows = DiurnalSchedule(period=10, amplitude=0.3).phase_windows(30)
        names = [w[0] for w in windows]
        assert set(names) <= {"diurnal:day", "diurnal:night"}
        assert all(a != b for a, b in zip(names, names[1:]))
        assert windows[-1][2] == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalSchedule(period=0)
        with pytest.raises(ValueError):
            DiurnalSchedule(amplitude=1.0)


class TestAdversarial:
    def test_all_requests_funnel_into_subtree(self):
        rng = random.Random(6)
        gen = AdversarialPrefixStacking("S3L")
        for _ in range(500):
            assert gen.sample(rng, KEYS).startswith("S3L")

    def test_zipf_stacking_prefers_first_keys(self):
        rng = random.Random(7)
        gen = AdversarialPrefixStacking("S3L", s=1.5)
        counts = Counter(gen.sample(rng, KEYS) for _ in range(6000))
        hot = sorted(k for k in KEYS if k.startswith("S3L"))
        assert counts[hot[0]] > counts[hot[1]] > counts[hot[2]]

    def test_falls_back_to_insertion_point(self):
        rng = random.Random(8)
        gen = AdversarialPrefixStacking("zzz")
        assert gen.sample(rng, KEYS) == KEYS[-1]  # stacked on one key
        gen2 = AdversarialPrefixStacking("A")
        assert gen2.sample(rng, KEYS) == KEYS[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            AdversarialPrefixStacking("S3L", s=0)


class TestMixedSchedule:
    def _mixed(self):
        return MixedSchedule(
            [
                SchedulePhase(0, 10, AdversarialPrefixStacking("S3L")),
                SchedulePhase(10, 20, FlashCrowd("d", onset=10, half_life=2), rate=2.0),
            ]
        )

    def test_splices_generators_and_schedules(self):
        rng = random.Random(9)
        mixed = self._mixed()
        assert mixed.sample(5, rng, KEYS).startswith("S3L")
        # nested schedules see the absolute unit: unit 10 is the onset.
        assert mixed.rate_multiplier(10) == pytest.approx(2.0 * 2.0)

    def test_fallback_outside_phases(self):
        rng = random.Random(10)
        mixed = self._mixed()
        assert mixed.rate_multiplier(50) == 1.0
        counts = Counter(mixed.sample(50, rng, KEYS) for _ in range(3500))
        assert all(counts[k] > 300 for k in KEYS)

    def test_phase_windows_name_sources(self):
        windows = self._mixed().phase_windows(30)
        assert windows[0] == ("adversarial:S3L", 0, 10)
        assert windows[1][1:] == (10, 20)
        assert windows[2] == ("uniform", 20, 30)

    def test_rejects_overlap_and_bad_rate(self):
        with pytest.raises(ValueError, match="overlap"):
            MixedSchedule(
                [
                    SchedulePhase(0, 10, UniformRequests()),
                    SchedulePhase(5, 15, UniformRequests()),
                ]
            )
        with pytest.raises(ValueError):
            SchedulePhase(0, 10, UniformRequests(), rate=0.0)
        with pytest.raises(ValueError):
            SchedulePhase(5, 5, UniformRequests())
