"""Request generators: uniform, hot spots, Zipf, phased schedules."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.workloads.requests import (
    HotSpotRequests,
    Phase,
    PhasedSchedule,
    UniformRequests,
    ZipfRequests,
    figure8_schedule,
)

KEYS = ["Pdgesv", "S3L_fft", "S3L_sort", "daxpy", "dgemm", "sgemm"]


class TestUniform:
    def test_samples_from_available(self, rng):
        gen = UniformRequests()
        for _ in range(50):
            assert gen.sample(rng, KEYS) in KEYS

    def test_roughly_uniform(self):
        rng = random.Random(1)
        gen = UniformRequests()
        counts = Counter(gen.sample(rng, KEYS) for _ in range(6000))
        for k in KEYS:
            assert 800 <= counts[k] <= 1200


class TestHotSpot:
    def test_concentrates_on_prefix(self):
        rng = random.Random(2)
        gen = HotSpotRequests("S3L", intensity=0.8)
        counts = Counter(gen.sample(rng, KEYS) for _ in range(5000))
        hot = counts["S3L_fft"] + counts["S3L_sort"]
        assert hot > 0.7 * 5000

    def test_falls_back_when_prefix_absent(self, rng):
        gen = HotSpotRequests("QQQ", intensity=0.9)
        assert gen.sample(rng, KEYS) in KEYS

    def test_intensity_bounds(self):
        with pytest.raises(ValueError):
            HotSpotRequests("S3L", intensity=0.0)

    def test_cache_tracks_population_change(self, rng):
        gen = HotSpotRequests("S3L", intensity=1.0)
        gen.sample(rng, ["S3L_a", "x"])
        out = gen.sample(rng, ["S3L_b", "y"])  # new population
        assert out == "S3L_b"


class TestZipf:
    def test_skewed_distribution(self):
        rng = random.Random(3)
        gen = ZipfRequests(s=1.2, seed_rng=random.Random(1))
        counts = Counter(gen.sample(rng, KEYS) for _ in range(6000))
        top = counts.most_common(1)[0][1]
        assert top > 6000 / len(KEYS) * 1.8  # much hotter than uniform

    def test_bad_exponent(self):
        with pytest.raises(ValueError):
            ZipfRequests(s=0)

    def test_stable_ranking_across_units(self):
        seed_rng = random.Random(5)
        gen = ZipfRequests(s=2.0, seed_rng=seed_rng)
        rng = random.Random(6)
        first = Counter(gen.sample(rng, KEYS) for _ in range(3000)).most_common(1)[0][0]
        second = Counter(gen.sample(rng, KEYS) for _ in range(3000)).most_common(1)[0][0]
        assert first == second

    def test_weights_cached_across_corpus_growth(self):
        """Regression: a growing corpus (every growth unit) must extend the
        cached rank weights, not re-raise every rank to a float power."""
        gen = ZipfRequests(s=1.1, seed_rng=random.Random(2))
        rng = random.Random(3)
        sizes = list(range(10, 200, 10))
        for n in sizes:
            corpus = [f"k{i:04d}" for i in range(n)]
            for _ in range(5):
                gen.sample(rng, corpus)
        # One evaluation per rank ever seen — not one per rank per resize.
        assert gen.weight_evals == max(sizes)

    def test_growth_draws_identical_to_uncached(self):
        """The cache must not change a single draw: replay the exact
        sample stream against a from-scratch (pre-cache) implementation
        that honours the same no-op on an unchanged corpus size."""
        import bisect as bisect_mod
        import itertools

        sizes = [7, 19, 19, 40, 64]
        gen = ZipfRequests(s=1.3, seed_rng=random.Random(11))
        rng = random.Random(12)
        got = []
        for n in sizes:
            corpus = [f"k{i:04d}" for i in range(n)]
            got.extend(gen.sample(rng, corpus) for _ in range(6))

        order_rng = random.Random(11)
        ref_rng = random.Random(12)
        want = []
        prev_n = None
        cdf: list[float] = []
        perm: list[int] = []
        for n in sizes:
            corpus = [f"k{i:04d}" for i in range(n)]
            if n != prev_n:
                weights = [1.0 / (i + 1) ** 1.3 for i in range(n)]
                total = sum(weights)
                cdf = list(itertools.accumulate(w / total for w in weights))
                perm = list(range(n))
                order_rng.shuffle(perm)
                prev_n = n
            for _ in range(6):
                rank = min(bisect_mod.bisect_left(cdf, ref_rng.random()), n - 1)
                want.append(corpus[perm[rank]])
        assert got == want


class TestPhasedSchedule:
    def test_phase_windows(self):
        sched = PhasedSchedule(
            [Phase(0, 5, UniformRequests()), Phase(5, 10, HotSpotRequests("S3L"))]
        )
        assert isinstance(sched.generator_at(0), UniformRequests)
        assert isinstance(sched.generator_at(5), HotSpotRequests)
        assert isinstance(sched.generator_at(99), UniformRequests)  # fallback

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            PhasedSchedule([Phase(0, 6, UniformRequests()), Phase(5, 9, UniformRequests())])

    def test_bad_window(self):
        with pytest.raises(ValueError):
            Phase(5, 5, UniformRequests())

    def test_figure8_timeline(self):
        sched = figure8_schedule()
        assert isinstance(sched.generator_at(20), UniformRequests)
        g40 = sched.generator_at(40)
        assert isinstance(g40, HotSpotRequests) and g40.prefix == "S3L"
        g80 = sched.generator_at(80)
        assert isinstance(g80, HotSpotRequests) and g80.prefix == "P"
        assert isinstance(sched.generator_at(130), UniformRequests)

    def test_sample_delegates_by_unit(self):
        rng = random.Random(7)
        sched = figure8_schedule(intensity=1.0)
        key = sched.sample(50, rng, KEYS)  # S3L phase
        assert key.startswith("S3L")
