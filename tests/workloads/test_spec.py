"""Workload spec parsing and config-parse-time validation."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.lb import balancer_from_spec
from repro.workloads.dynamics import (
    AdversarialPrefixStacking,
    DiurnalSchedule,
    FlashCrowd,
    MixedSchedule,
    SteadySchedule,
)
from repro.workloads.requests import (
    PhasedSchedule,
    UniformRequests,
    WorkloadSchedule,
    ZipfRequests,
)
from repro.workloads.spec import WORKLOAD_KINDS, WorkloadSpecError, parse_workload


class TestStringSpecs:
    def test_every_kind_parses_to_a_schedule(self):
        specs = [
            "uniform", "zipf:1.3", "hotspot:S3L:0.7", "figure8",
            "flash_crowd:S3L:onset=10", "diurnal:period=12:amplitude=0.3",
            "adversarial:P",
        ]
        for spec in specs:
            assert isinstance(parse_workload(spec), WorkloadSchedule), spec

    def test_flash_crowd_options_apply(self):
        crowd = parse_workload("flash_crowd:S3L:onset=7:peak=0.5:rate_surge=4")
        assert isinstance(crowd, FlashCrowd)
        assert crowd.onset == 7 and crowd.peak == 0.5 and crowd.rate_surge == 4

    def test_zipf_exponent_and_hotspot_intensity(self):
        zipf = parse_workload("zipf:2.5")
        assert isinstance(zipf, SteadySchedule)
        assert zipf.generator.s == 2.5
        hot = parse_workload("hotspot:S3L:0.6")
        assert hot.generator.intensity == 0.6

    def test_unknown_kind_names_the_alternatives(self):
        with pytest.raises(WorkloadSpecError, match="known kinds"):
            parse_workload("bogus")
        for kind in ("hotspot", "flash_crowd", "adversarial"):
            with pytest.raises(WorkloadSpecError, match="prefix"):
                parse_workload(kind)

    def test_bad_numbers_and_options_fail_clearly(self):
        with pytest.raises(WorkloadSpecError, match="not a number"):
            parse_workload("zipf:hot")
        with pytest.raises(WorkloadSpecError, match="key=value"):
            parse_workload("diurnal:24")
        with pytest.raises(WorkloadSpecError):
            parse_workload("flash_crowd:S3L:peak=2.0")  # constructor rejects
        with pytest.raises(WorkloadSpecError):
            parse_workload("flash_crowd:S3L:bogus_opt=1")


class TestDictSpecs:
    def test_mixed_composes_nested_specs(self):
        sched = parse_workload(
            {
                "kind": "mixed",
                "phases": [
                    {"start": 0, "end": 10, "workload": "uniform"},
                    {"start": 10, "end": 20, "workload": "flash_crowd:S3L:onset=10",
                     "rate": 1.5},
                ],
                "fallback": "zipf:1.1",
            }
        )
        assert isinstance(sched, MixedSchedule)
        assert sched.rate_multiplier(10) == pytest.approx(1.5 * 2.0)

    def test_diurnal_nests_any_inner(self):
        sched = parse_workload(
            {"kind": "diurnal", "inner": "adversarial:S3L", "period": 12}
        )
        assert isinstance(sched, DiurnalSchedule)
        assert isinstance(sched.inner.generator, AdversarialPrefixStacking)

    def test_generic_kwargs_form(self):
        crowd = parse_workload({"kind": "flash_crowd", "prefix": "S3L", "onset": 3})
        assert isinstance(crowd, FlashCrowd) and crowd.onset == 3

    def test_bad_dicts_fail_clearly(self):
        with pytest.raises(WorkloadSpecError, match="phases"):
            parse_workload({"kind": "mixed"})
        with pytest.raises(WorkloadSpecError, match="bad mixed phase"):
            parse_workload({"kind": "mixed", "phases": [{"start": 0}]})
        with pytest.raises(WorkloadSpecError, match="known kinds"):
            parse_workload({"kind": "nope"})


class TestObjectSpecs:
    def test_schedule_passes_through(self):
        crowd = FlashCrowd("S3L")
        assert parse_workload(crowd) is crowd

    def test_generator_is_wrapped(self):
        sched = parse_workload(ZipfRequests(1.2))
        assert isinstance(sched, SteadySchedule)

    def test_none_means_uniform(self):
        sched = parse_workload(None)
        assert isinstance(sched.generator_at(0), UniformRequests)

    def test_invalid_object_raises_spec_error(self):
        with pytest.raises(WorkloadSpecError, match="neither"):
            parse_workload(object())

    def test_kinds_constant_matches_parser(self):
        for kind in ("uniform", "figure8"):
            assert kind in WORKLOAD_KINDS


class TestConfigIntegration:
    def test_workload_spec_builds_the_schedule(self):
        cfg = ExperimentConfig(workload="flash_crowd:S3L:onset=40")
        assert isinstance(cfg.schedule, FlashCrowd)
        assert "flash:S3L@40" in cfg.describe()

    def test_bare_generator_as_schedule_is_wrapped(self):
        cfg = ExperimentConfig(schedule=ZipfRequests(1.1))
        assert isinstance(cfg.schedule, SteadySchedule)

    def test_default_schedule_still_phased(self):
        assert isinstance(ExperimentConfig().schedule, PhasedSchedule)

    def test_invalid_workload_fails_at_config_parse_time(self):
        with pytest.raises(WorkloadSpecError):
            ExperimentConfig(workload="bogus")
        with pytest.raises(WorkloadSpecError):
            ExperimentConfig(schedule=object())

    def test_with_lb_preserves_workload(self):
        from repro.lb.mlt import MLT

        cfg = ExperimentConfig(workload="adversarial:S3L")
        other = cfg.with_lb(MLT())
        assert isinstance(other.schedule, SteadySchedule)
        assert other.schedule.name == "adversarial:S3L"


class TestBalancerSpecs:
    def test_known_balancers(self):
        assert balancer_from_spec("nolb").name == "NoLB"
        assert balancer_from_spec("MLT").name == "MLT"
        assert balancer_from_spec("mlt:fraction=0.25").fraction == 0.25
        assert balancer_from_spec("mlt:allow_empty=true").allow_empty is True
        assert balancer_from_spec("kchoices:k=2").k == 2

    def test_bad_specs(self):
        with pytest.raises(ValueError, match="known"):
            balancer_from_spec("roundrobin")
        with pytest.raises(ValueError, match="key=value"):
            balancer_from_spec("mlt:fraction")
        with pytest.raises(ValueError):
            balancer_from_spec("kc:k=zero")
