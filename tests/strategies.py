"""Shared hypothesis strategies for the property-test suites.

One home for the input generators the equivalence suites
(``tests/dlpt/test_discovery_equivalence.py``) and the runtime suites
(``tests/net/``) draw from, so "a random PGCP workload" means the same
thing everywhere: keys and peer ids over the small ``abc`` alphabet
(dense shared prefixes → deep trees at tiny sizes), request mixes that
cover registered keys, absent extensions, absent prefixes and foreign
keys, and wire-encodable protocol messages for codec round-trips.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.alphabet import Alphabet
from repro.core.queries import (
    ExactQuery,
    MultiAttributeQuery,
    PrefixQuery,
    RangeQuery,
)
from repro.dlpt import messages as m

#: The three-digit alphabet every equivalence suite builds trees over.
ALPHABET = Alphabet(digits=("a", "b", "c"), name="abc")

#: Service-key corpora: short strings over "abc", duplicates allowed
#: (re-registration must be equivalent too).
keys_st = st.lists(
    st.text(alphabet="abc", min_size=1, max_size=8), min_size=1, max_size=25
)

#: Peer-identifier sets: unique, same id space as the keys.
peer_ids_st = st.lists(
    st.text(alphabet="abc", min_size=2, max_size=6),
    min_size=2,
    max_size=8,
    unique=True,
)

#: Larger peer pools for fault suites that need crash survivors.
peer_ids_min3_st = st.lists(
    st.text(alphabet="abc", min_size=2, max_size=6),
    min_size=3,
    max_size=8,
    unique=True,
)


def request_mixes(keys, labels, n: int = 60) -> st.SearchStrategy:
    """``n`` ``(key, entry_label)`` request pairs over a built tree.

    Every fifth request is perturbed the way the original hand-rolled
    mixer did: an absent extension below a (possible) leaf, a
    possibly-absent prefix, or a key outside the dense bands — so the
    mix exercises hits, misses above, misses below and misses sideways.
    """
    keys = sorted(set(keys))
    labels = sorted(labels)

    def perturb(draws):
        requests = []
        for i, (key, label) in enumerate(draws):
            if i % 5 == 1:
                key = key + "ab"  # absent below a leaf
            elif i % 5 == 2 and len(key) > 1:
                key = key[:-1]  # possibly-absent prefix
            elif i % 5 == 3:
                key = "cc" + key  # likely outside dense bands
            requests.append((key, label))
        return requests

    pairs = st.tuples(st.sampled_from(keys), st.sampled_from(labels))
    return st.lists(pairs, min_size=n, max_size=n).map(perturb)


def entry_labels(labels, n: int) -> st.SearchStrategy:
    """``n`` request entry points drawn from a built tree's labels."""
    return st.lists(st.sampled_from(sorted(labels)), min_size=n, max_size=n)


# -- set queries over a built tree (for the oracle differential suites) ----


def prefix_queries(keys) -> st.SearchStrategy:
    """Prefix completions anchored on registered keys (non-empty answers
    are common) plus the occasional foreign prefix (empty answers)."""
    keys = sorted(set(keys))
    anchored = st.builds(
        lambda key, n: PrefixQuery(key[: max(1, n % (len(key) + 1))]),
        st.sampled_from(keys),
        st.integers(0, 8),
    )
    foreign = st.text(alphabet="abc", min_size=1, max_size=6).map(PrefixQuery)
    return st.one_of(anchored, anchored, foreign)


def range_queries(keys) -> st.SearchStrategy:
    """Lexicographic ranges whose bounds straddle the registered corpus:
    spans of the sorted key list (crossing subtree — and, on a damaged
    forest, fragment — boundaries) plus arbitrary sorted bound pairs."""
    keys = sorted(set(keys))

    def span(lo_i: int, width: int) -> RangeQuery:
        lo = keys[lo_i % len(keys)]
        hi = keys[min(lo_i % len(keys) + width, len(keys) - 1)]
        return RangeQuery(min(lo, hi), max(lo, hi))

    spans = st.builds(span, st.integers(0, 200), st.integers(0, 12))
    arbitrary = st.builds(
        lambda a, b: RangeQuery(min(a, b), max(a, b)),
        st.text(alphabet="abc", min_size=1, max_size=6),
        st.text(alphabet="abc", min_size=1, max_size=6),
    )
    return st.one_of(spans, spans, arbitrary)


def set_queries(keys) -> st.SearchStrategy:
    """Any single-attribute set query over a registered corpus."""
    keys = sorted(set(keys))
    return st.one_of(
        prefix_queries(keys),
        range_queries(keys),
        st.sampled_from(keys).map(ExactQuery),
    )


def multi_attribute_queries(attributes) -> st.SearchStrategy:
    """Conjunctions over ``attributes`` — a mapping of attribute name to
    the values registered for it (via :func:`attribute_key`)."""
    clause_sts = {
        attr: st.one_of(
            st.sampled_from(sorted(values)).map(ExactQuery),
            st.builds(
                lambda v, n: PrefixQuery(v[: max(1, n % (len(v) + 1))]),
                st.sampled_from(sorted(values)),
                st.integers(0, 8),
            ),
            st.builds(
                lambda a, b: RangeQuery(min(a, b), max(a, b)),
                st.sampled_from(sorted(values)),
                st.sampled_from(sorted(values)),
            ),
        )
        for attr, values in attributes.items()
    }
    names = sorted(attributes)
    return (
        st.lists(st.sampled_from(names), min_size=1, unique=True)
        .flatmap(
            lambda chosen: st.fixed_dictionaries(
                {attr: clause_sts[attr] for attr in chosen}
            )
        )
        .map(MultiAttributeQuery)
    )


# -- wire-encodable protocol messages (for codec round-trip properties) ----

_label_st = st.text(alphabet="abc", min_size=1, max_size=8)
_datum_st = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.text(max_size=12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)

node_payloads_st = st.builds(
    m.NodePayload,
    label=_label_st,
    father=st.one_of(st.none(), _label_st),
    children=st.frozensets(_label_st, max_size=4),
    data=st.lists(_datum_st, max_size=3).map(tuple),
)

_labels_tuple_st = st.lists(_label_st, max_size=4).map(tuple)

#: One builder per wire-encodable dataclass, keyed by type name.  The
#: codec suite asserts this registry covers ``MESSAGE_TYPES`` exactly, so
#: adding a message type without a round-trip generator fails loudly.
wire_message_builders = {
    "PeerJoin": st.builds(
        m.PeerJoin,
        node=_label_st,
        joiner=_label_st,
        state=st.sampled_from([0, 1]),
        capacity=st.integers(1, 100),
    ),
    "NewPredecessor": st.builds(
        m.NewPredecessor, joiner=_label_st, capacity=st.integers(1, 100)
    ),
    "YourInformation": st.builds(
        m.YourInformation,
        pred=_label_st,
        succ=_label_st,
        nodes=st.lists(node_payloads_st, max_size=3).map(tuple),
    ),
    "UpdateSuccessor": st.builds(m.UpdateSuccessor, new_successor=_label_st),
    "LeaveTransfer": st.builds(
        m.LeaveTransfer,
        pred=_label_st,
        nodes=st.lists(node_payloads_st, max_size=3).map(tuple),
    ),
    "UpdatePredecessor": st.builds(m.UpdatePredecessor, new_predecessor=_label_st),
    "DataInsertion": st.builds(
        m.DataInsertion, node=_label_st, key=_label_st, datum=_datum_st
    ),
    "SearchingHost": st.builds(m.SearchingHost, node=_label_st, payload=node_payloads_st),
    "Host": st.builds(m.Host, payload=node_payloads_st),
    "UpdateChild": st.builds(m.UpdateChild, node=_label_st, old=_label_st, new=_label_st),
    "DiscoveryRequest": st.builds(
        m.DiscoveryRequest,
        node=_label_st,
        key=_label_st,
        reply_to=_label_st,
        hops=st.integers(0, 50),
    ),
    "DiscoveryReply": st.builds(
        m.DiscoveryReply,
        key=_label_st,
        found=st.booleans(),
        data=st.lists(_datum_st, max_size=3).map(tuple),
        hops=st.integers(0, 50),
    ),
    "SetQueryRequest": st.builds(
        m.SetQueryRequest,
        node=_label_st,
        kind=st.sampled_from(["prefix", "range"]),
        lo=_label_st,
        hi=st.one_of(st.just(""), _label_st),
        reply_to=_label_st,
        phase=st.sampled_from([0, 1]),
        pending=_labels_tuple_st,
        keys=_labels_tuple_st,
        hops=st.integers(0, 50),
    ),
    "SetQueryReply": st.builds(
        m.SetQueryReply,
        kind=st.sampled_from(["prefix", "range"]),
        lo=_label_st,
        hi=st.one_of(st.just(""), _label_st),
        keys=_labels_tuple_st,
        hops=st.integers(0, 50),
    ),
}

#: Any protocol message the ``repro-wire/1`` codec must round-trip.
wire_messages_st = st.one_of(*wire_message_builders.values())
