"""KC (k-choices): candidate scoring and placement quality."""

from __future__ import annotations

import random

import pytest

from repro.core.alphabet import BINARY
from repro.dlpt.system import DLPTSystem
from repro.lb.kchoices import KChoices
from repro.lb.nolb import NoLB
from repro.peers.capacity import FixedCapacity


def hot_system(rng, n_peers=4):
    s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(5))
    s.build(rng, n_peers)
    for k in ("000", "001", "010", "011", "100", "101", "110", "111"):
        s.register(k)
    # Make one destination hot and close the unit so KC sees history.
    for _ in range(40):
        s.discover("101", entry_label="101")
    s.end_time_unit()
    return s


class TestScoring:
    def test_score_counts_split_throughput(self, rng):
        s = hot_system(rng)
        kc = KChoices(k=4)
        host = s.mapping.host_of("101")
        # A candidate just below the hot key takes everything below it;
        # splitting the hot host's interval around the hot key scores
        # higher than a candidate in an empty region only if it offloads.
        score_inside = kc.score_candidate(s, "1010", capacity=5)
        assert score_inside >= 0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KChoices(k=0)

    def test_choose_join_id_returns_fresh_id(self, rng):
        s = hot_system(rng)
        kc = KChoices(k=4)
        pid = kc.choose_join_id(s, capacity=5, rng=rng)
        assert pid not in s.ring
        s.add_peer(rng, peer_id=pid, capacity=5)
        s.check_invariants()

    def test_empty_ring_falls_back_to_random(self, rng):
        s = DLPTSystem(alphabet=BINARY)
        pid = KChoices().choose_join_id(s, capacity=5, rng=rng)
        assert isinstance(pid, str) and len(pid) > 0


class TestPlacementQuality:
    def test_kc_beats_random_on_hot_spot_relief(self):
        """Statistically, KC's chosen position relieves the hot peer more
        often than a random join (k=4 candidates vs 1)."""
        kc_scores, random_scores = [], []
        for seed in range(30):
            rng = random.Random(seed)
            s = hot_system(rng)
            kc = KChoices(k=4)
            nolb = NoLB()
            cand_kc = kc.choose_join_id(s, capacity=5, rng=rng)
            cand_rand = nolb.choose_join_id(s, capacity=5, rng=rng)
            kc_scores.append(kc.score_candidate(s, cand_kc, capacity=5))
            random_scores.append(kc.score_candidate(s, cand_rand, capacity=5))
        assert sum(kc_scores) >= sum(random_scores)

    def test_k1_equals_single_random_probe_distribution(self, rng):
        s = hot_system(rng)
        pid = KChoices(k=1).choose_join_id(s, capacity=5, rng=rng)
        assert pid not in s.ring
