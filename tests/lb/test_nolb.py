"""No-LB baseline: protocol placement, no periodic balancing."""

from __future__ import annotations

from repro.core.alphabet import BINARY
from repro.dlpt.system import DLPTSystem
from repro.lb.base import LoadBalancer
from repro.lb.nolb import NoLB
from repro.peers.capacity import FixedCapacity


class TestNoLB:
    def test_periodic_step_is_noop(self, rng):
        s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(5))
        s.build(rng, 4)
        s.register("101")
        assert NoLB().run_balancing(s, rng) == 0

    def test_join_id_is_valid_and_fresh(self, rng):
        s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(5))
        s.build(rng, 4)
        pid = NoLB().choose_join_id(s, capacity=5, rng=rng)
        assert pid not in s.ring
        assert s.alphabet.is_valid(pid)

    def test_name_for_legends(self):
        assert NoLB().name == "NoLB"
        assert LoadBalancer().name == "NoLB"

    def test_repr(self):
        assert "NoLB" in repr(NoLB())
