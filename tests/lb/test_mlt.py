"""MLT: split optimality (vs brute force), repositioning, convergence."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import BINARY
from repro.dlpt.system import DLPTSystem
from repro.lb.mlt import MLT, best_split
from repro.peers.capacity import FixedCapacity


class TestBestSplit:
    def test_prefers_throughput(self):
        # loads [10, 0, 0, 10], caps 10/10: splitting in the middle gets
        # both hot nodes served.
        d = best_split(["a", "b", "c", "d"], [10, 0, 0, 10], 10, 10, current_index=1)
        assert d.best_throughput == 20

    def test_respects_capacity_clipping(self):
        d = best_split(["a", "b"], [100, 100], 10, 10, current_index=1)
        assert d.best_throughput == 20  # both saturated regardless

    def test_interior_candidates_only(self):
        # Paper: m-1 candidates, each peer keeps >= 1 node.
        d = best_split(["a", "b", "c"], [1, 1, 1], 10, 10, current_index=1)
        assert 1 <= d.best_index <= 2

    def test_allow_empty_extends_range(self):
        d = best_split(["a"], [5], 10, 10, current_index=0, allow_empty=True)
        assert d.best_index in (0, 1)

    def test_tie_prefers_fewest_migrations(self):
        # All splits give the same throughput and the same peak utilisation
        # is impossible here, so craft loads with a flat objective: zero
        # loads make every split identical -> stay at the current index.
        d = best_split(["a", "b", "c", "d"], [0, 0, 0, 0], 10, 10, current_index=2)
        assert d.best_index == 2 and not d.is_move

    def test_tie_prefers_lower_peak_utilisation(self):
        # Splits {a|bc} and {ab|c} both reach throughput 6, but the loads
        # 4+2 split evens utilisation better than 2+4 on caps 8/4.
        d = best_split(["a", "b", "c"], [2, 2, 2], 8, 4, current_index=1)
        assert d.best_index == 2  # P (cap 8) takes two nodes

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            best_split(["a"], [1, 2], 1, 1, current_index=0)

    def test_current_throughput_reported(self):
        d = best_split(["a", "b"], [10, 0], 5, 5, current_index=1)
        assert d.current_throughput == 5

    @settings(max_examples=200)
    @given(
        loads=st.lists(st.integers(0, 50), min_size=2, max_size=12),
        cap_p=st.integers(1, 60),
        cap_s=st.integers(1, 60),
        data=st.data(),
    )
    def test_matches_brute_force(self, loads, cap_p, cap_s, data):
        """The O(m) sweep finds the same optimum as trying every split."""
        labels = [f"n{i}" for i in range(len(loads))]
        cur = data.draw(st.integers(1, len(loads) - 1))
        d = best_split(labels, loads, cap_p, cap_s, current_index=cur)
        brute = max(
            min(sum(loads[:i]), cap_p) + min(sum(loads[i:]), cap_s)
            for i in range(1, len(loads))
        )
        assert d.best_throughput == brute

    @settings(max_examples=100)
    @given(
        loads=st.lists(st.integers(0, 50), min_size=2, max_size=10),
        cap_p=st.integers(1, 60),
        cap_s=st.integers(1, 60),
    )
    def test_never_worse_than_current(self, loads, cap_p, cap_s):
        labels = [f"n{i}" for i in range(len(loads))]
        d = best_split(labels, loads, cap_p, cap_s, current_index=1)
        assert d.best_throughput >= d.current_throughput


def build_loaded_system(rng, n_peers=6, keys=None):
    s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(5))
    s.build(rng, n_peers)
    for k in keys or ["000", "001", "010", "011", "100", "101", "110", "111"]:
        s.register(k)
    return s


class TestBalancePair:
    def test_migrates_under_skew(self, rng):
        s = build_loaded_system(rng)
        # Load one key heavily, close the unit, then balance its host pair.
        hot = "101"
        for _ in range(20):
            s.discover(hot, entry_label=hot)
        s.end_time_unit()
        mlt = MLT()
        moved = mlt.run_balancing(s, rng)
        s.check_invariants()
        assert moved >= 0  # never corrupts; may or may not move

    def test_no_history_no_move_possible_but_valid(self, rng):
        s = build_loaded_system(rng)
        mlt = MLT()
        mlt.run_balancing(s, rng)  # zero loads: ties keep current splits
        s.check_invariants()

    def test_single_peer_noop(self, rng):
        s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(5))
        s.build(rng, 1)
        s.register("1")
        assert MLT().run_balancing(s, rng) == 0

    def test_fraction_validates(self):
        with pytest.raises(ValueError):
            MLT(fraction=0.0)
        with pytest.raises(ValueError):
            MLT(fraction=1.5)

    def test_invariants_after_many_rounds(self, rng):
        s = build_loaded_system(rng, n_peers=8)
        mlt = MLT()
        keys = sorted(s.registered_keys())
        for _ in range(10):
            for _ in range(30):
                s.discover(keys[rng.randrange(len(keys))], rng=rng)
            s.end_time_unit()
            mlt.run_balancing(s, rng)
            s.check_invariants()


class TestConvergence:
    def test_pair_throughput_improves_for_hot_node(self, rng):
        """End-to-end: a saturated hot pair's joint throughput increases
        after one MLT pass (the core Section 3.3 claim)."""
        s = build_loaded_system(rng, n_peers=4)
        keys = sorted(s.registered_keys())
        # Saturate with a skewed workload.
        for _ in range(60):
            s.discover(keys[0], entry_label=keys[0])
            s.discover(keys[1], entry_label=keys[1])
        s.end_time_unit()

        def total_throughput(workload):
            sat = 0
            for k in workload:
                if s.discover(k, entry_label=k).satisfied:
                    sat += 1
            return sat

        workload = [keys[0], keys[1]] * 30
        before = total_throughput(workload)
        s.end_time_unit()
        MLT().run_balancing(s, rng)
        after = total_throughput(list(workload))
        assert after >= before

    def test_mlt_spreads_a_cluster_over_peers(self, rng):
        """Repeated MLT rounds recruit more peers into a hot key band."""
        s = build_loaded_system(rng, n_peers=8,
                                keys=[format(i, "06b") for i in range(32)])
        keys = sorted(s.registered_keys())

        def hosts_of_keys():
            return {s.mapping.host_of(k).id for k in keys}

        before = len(hosts_of_keys())
        mlt = MLT()
        for _ in range(12):
            for k in keys:
                s.discover(k, entry_label=k)
            s.end_time_unit()
            mlt.run_balancing(s, rng)
            s.check_invariants()
        assert len(hosts_of_keys()) >= before
