"""P-Grid: partition construction, routing, state size."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pgrid import PGrid
from repro.workloads.keys import random_binary_keys


def make_grid(n_peers=16, n_keys=40, key_bits=8, seed=1):
    rng = random.Random(seed)
    keys = random_binary_keys(rng, n_keys, length=key_bits)
    peer_ids = [f"p{i:03d}" for i in range(n_peers)]
    return PGrid(peer_ids, keys, key_bits=key_bits, rng=rng), keys


class TestConstruction:
    def test_partitions_are_prefix_free(self):
        grid, _ = make_grid()
        grid.check_invariants()

    def test_every_peer_has_a_path(self):
        grid, _ = make_grid()
        assert all(p.path in grid.by_path for p in grid.peers.values())

    def test_replication_when_more_peers_than_partitions(self):
        grid, _ = make_grid(n_peers=32, n_keys=8)
        counts = [len(v) for v in grid.by_path.values()]
        assert max(counts) >= 2  # some partition replicated

    def test_needs_peers(self):
        with pytest.raises(ValueError):
            PGrid([], ["0" * 8], key_bits=8, rng=random.Random(1))

    def test_bad_key_width(self):
        with pytest.raises(ValueError):
            PGrid(["p"], ["010"], key_bits=8, rng=random.Random(1))


class TestLookup:
    def test_all_keys_found_from_all_starts(self):
        grid, keys = make_grid(n_peers=12, n_keys=30)
        for start in list(grid.peers)[:6]:
            for k in keys[:10]:
                found, hops = grid.lookup(k, start_peer=start)
                assert found, (start, k)

    def test_absent_key_reports_not_found(self):
        grid, keys = make_grid()
        missing = next(
            format(i, "08b") for i in range(256) if format(i, "08b") not in set(keys)
        )
        found, _ = grid.lookup(missing)
        assert not found

    def test_hops_bounded_by_path_length(self):
        grid, keys = make_grid(n_peers=32, n_keys=100)
        max_path = max(len(p.path) for p in grid.peers.values())
        for k in keys[:20]:
            _, hops = grid.lookup(k)
            assert hops <= max_path + 2

    def test_hops_scale_with_partitions(self):
        """O(log |Π|): doubling partitions adds ~1 hop, not ~|Π| hops."""
        rng = random.Random(3)
        small, keys_s = make_grid(n_peers=8, n_keys=64, seed=3)
        large, keys_l = make_grid(n_peers=64, n_keys=512, key_bits=12, seed=3)
        mean = lambda g, ks: sum(g.lookup(k)[1] for k in ks[:50]) / 50
        m_small, m_large = mean(small, keys_s), mean(large, keys_l)
        assert m_large <= m_small + math.log2(large.n_partitions / max(small.n_partitions, 1)) + 3


class TestRange:
    def test_range_matches_filter(self):
        grid, keys = make_grid(n_peers=12, n_keys=50)
        lo, hi = "00100000", "11000000"
        out, hops = grid.range_query(lo, hi)
        assert out == sorted(k for k in keys if lo <= k <= hi)

    def test_bad_range(self):
        grid, _ = make_grid()
        with pytest.raises(ValueError):
            grid.range_query("1" * 8, "0" * 8)


class TestState:
    def test_state_size_is_logarithmic(self):
        grid, _ = make_grid(n_peers=32, n_keys=200)
        # Mean routing state ~ path length ~ log2(|Π|), far below |Π|.
        assert grid.mean_state_size() <= 4 * math.log2(max(grid.n_partitions, 2)) + 4

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100), n_keys=st.integers(4, 60))
    def test_membership_invariant_random_instances(self, seed, n_keys):
        rng = random.Random(seed)
        keys = random_binary_keys(rng, n_keys, length=8)
        grid = PGrid([f"p{i}" for i in range(10)], keys, key_bits=8, rng=rng)
        grid.check_invariants()
        for k in keys:
            found, _ = grid.lookup(k)
            assert found
