"""Prefix Hash Tree: trie maintenance, lookup modes, ranges, costs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pht import PrefixHashTree
from repro.dht.chord import ChordRing
from repro.workloads.keys import random_binary_keys


def make_pht(n_peers=16, key_bits=8, leaf_capacity=2):
    chord = ChordRing(bits=24)
    for i in range(n_peers):
        chord.add_peer(f"p{i:03d}")
    return PrefixHashTree(chord, key_bits=key_bits, leaf_capacity=leaf_capacity)


class TestInsertAndSplit:
    def test_root_leaf_initially(self):
        pht = make_pht()
        assert pht.leaf_count() == 1

    def test_insert_within_capacity_no_split(self):
        pht = make_pht(leaf_capacity=4)
        pht.insert("00000000")
        pht.insert("11111111")
        assert pht.leaf_count() == 1
        pht.check_invariants()

    def test_overflow_splits(self):
        pht = make_pht(leaf_capacity=2)
        for k in ("00000000", "01111111", "10000000"):
            pht.insert(k)
        assert pht.leaf_count() >= 2
        pht.check_invariants()

    def test_skewed_keys_split_recursively(self):
        pht = make_pht(leaf_capacity=2)
        for k in ("00000000", "00000001", "00000010", "00000011"):
            pht.insert(k)
        pht.check_invariants()
        # All keys share 6 leading zeros: the trie must go deep.
        assert any(len(p) >= 3 for p, n in pht.nodes.items() if n.is_leaf)

    def test_bad_key_rejected(self):
        pht = make_pht(key_bits=8)
        with pytest.raises(ValueError):
            pht.insert("0101")  # wrong width
        with pytest.raises(ValueError):
            pht.insert("0101010x")

    def test_bad_leaf_capacity(self):
        with pytest.raises(ValueError):
            PrefixHashTree(ChordRing(), leaf_capacity=0)


class TestLookup:
    @pytest.fixture
    def loaded(self):
        pht = make_pht(key_bits=8, leaf_capacity=2)
        rng = random.Random(4)
        self.keys = random_binary_keys(rng, 30, length=8)
        for k in self.keys:
            pht.insert(k)
        return pht

    def test_linear_finds_present_keys(self, loaded):
        for k in self.keys:
            assert loaded.lookup(k, mode="linear").found

    def test_binary_agrees_with_linear(self, loaded):
        for k in self.keys[:10]:
            lin = loaded.lookup(k, mode="linear")
            binr = loaded.lookup(k, mode="binary")
            assert lin.leaf_prefix == binr.leaf_prefix
            assert lin.found == binr.found

    def test_absent_key_not_found(self, loaded):
        missing = next(
            format(i, "08b") for i in range(256)
            if format(i, "08b") not in set(self.keys)
        )
        assert not loaded.lookup(missing).found

    def test_unknown_mode(self, loaded):
        with pytest.raises(ValueError):
            loaded.lookup("00000000", mode="psychic")

    def test_linear_costs_one_dht_get_per_level(self, loaded):
        res = loaded.lookup(self.keys[0], mode="linear")
        assert res.trie_steps == len(res.leaf_prefix) + 1


class TestRange:
    def test_range_matches_filter(self):
        pht = make_pht(key_bits=8, leaf_capacity=2)
        rng = random.Random(7)
        keys = random_binary_keys(rng, 40, length=8)
        for k in keys:
            pht.insert(k)
        lo, hi = "00100000", "11000000"
        out, hops = pht.range_query(lo, hi)
        assert out == sorted(k for k in keys if lo <= k <= hi)
        assert hops >= 0

    def test_bad_range(self):
        pht = make_pht()
        with pytest.raises(ValueError):
            pht.range_query("11111111", "00000000")


class TestCostsAndState:
    def test_dht_hops_accumulate(self):
        pht = make_pht()
        before = pht.total_dht_hops
        pht.insert("00000000")
        assert pht.total_dht_hops >= before

    def test_local_state_covers_all_nodes(self):
        pht = make_pht(leaf_capacity=1, key_bits=8)
        for k in ("00000000", "10000000", "01000000", "11000000"):
            pht.insert(k)
        state = pht.local_state()
        assert sum(state.values()) == len(pht.nodes)

    @settings(max_examples=30, deadline=None)
    @given(keys=st.sets(st.text(alphabet="01", min_size=8, max_size=8),
                        min_size=1, max_size=40))
    def test_invariants_and_membership(self, keys):
        pht = make_pht(key_bits=8, leaf_capacity=3)
        for k in keys:
            pht.insert(k)
        pht.check_invariants()
        for k in keys:
            assert pht.lookup(k).found
