"""Cross-system set-query differential: P-Grid and PHT vs DLPT.

All three overlays answer the same prefix/range queries over one
fixed-width binary corpus; the result sets must be identical (and equal
to the brute-force oracle).  This is the proof obligation behind the
``query_cost`` paper artifact — the artifact itself re-runs it on every
regeneration, but the suite pins it at tier-1 granularity with
independent seeds and direct per-system calls.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.pgrid import PGrid
from repro.baselines.pht import PrefixHashTree
from repro.baselines.query_cost import (
    QueryCostMismatch,
    _band,
    measure_query_cost,
)
from repro.core.alphabet import BINARY
from repro.core.queries import PrefixQuery, RangeQuery
from repro.dht.chord import ChordRing
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity
from repro.workloads.keys import random_binary_keys

KEY_BITS = 10


@pytest.fixture(scope="module")
def corpus():
    return random_binary_keys(random.Random(5), 250, length=KEY_BITS)


@pytest.fixture(scope="module")
def systems(corpus):
    dlpt = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(10**9))
    dlpt.build(random.Random(5), 24)
    dlpt.register_batch(corpus)
    peer_ids = [f"peer-{i:04d}" for i in range(24)]
    pgrid = PGrid(peer_ids, corpus, key_bits=KEY_BITS, rng=random.Random(5))
    chord = ChordRing()
    chord.add_peers(peer_ids)
    pht = PrefixHashTree(chord, key_bits=KEY_BITS, leaf_capacity=4)
    for k in corpus:
        pht.insert(k)
    return dlpt, pgrid, pht


def answers(systems, corpus, family, lo, hi):
    """Each system's sorted result set for one query, oracle first."""
    dlpt, pgrid, pht = systems
    band_lo, band_hi = _band(family, lo, hi, KEY_BITS)
    oracle = [k for k in corpus if band_lo <= k <= band_hi]
    query = PrefixQuery(lo) if family == "prefix" else RangeQuery(lo, hi)
    dlpt_keys = list(dlpt.search(query, rng=random.Random(1)).results)
    pgrid_keys, _ = pgrid.range_query(band_lo, band_hi)
    pht_keys, _ = pht.range_query(band_lo, band_hi)
    return oracle, dlpt_keys, pgrid_keys, pht_keys


class TestCrossSystemResultSets:
    def test_prefix_queries_agree(self, systems, corpus):
        rng = random.Random(77)
        for _ in range(30):
            prefix = corpus[rng.randrange(len(corpus))][: rng.randint(1, 5)]
            oracle, dlpt_keys, pgrid_keys, pht_keys = answers(
                systems, corpus, "prefix", prefix, ""
            )
            assert dlpt_keys == oracle
            assert pgrid_keys == oracle
            assert pht_keys == oracle

    def test_range_queries_agree(self, systems, corpus):
        rng = random.Random(78)
        for _ in range(30):
            lo_i = rng.randrange(len(corpus))
            hi_i = min(lo_i + rng.randint(1, 40), len(corpus) - 1)
            oracle, dlpt_keys, pgrid_keys, pht_keys = answers(
                systems, corpus, "range", corpus[lo_i], corpus[hi_i]
            )
            assert dlpt_keys == oracle
            assert pgrid_keys == oracle
            assert pht_keys == oracle

    def test_empty_band_agrees(self, systems, corpus):
        # A band below the smallest key: everyone must return nothing.
        lo = "0" * KEY_BITS
        if lo in corpus:
            pytest.skip("corpus contains the all-zero key")
        oracle, dlpt_keys, pgrid_keys, pht_keys = answers(
            systems, corpus, "range", lo, lo
        )
        assert oracle == dlpt_keys == pgrid_keys == pht_keys == []

    def test_whole_space_agrees(self, systems, corpus):
        oracle, dlpt_keys, pgrid_keys, pht_keys = answers(
            systems, corpus, "range", "0" * KEY_BITS, "1" * KEY_BITS
        )
        assert dlpt_keys == pgrid_keys == pht_keys == oracle == list(corpus)


class TestQueryCostArtifact:
    def test_measurement_is_deterministic(self):
        a = measure_query_cost(n_keys=120, n_peers=12, key_bits=10, n_per_family=8)
        b = measure_query_cost(n_keys=120, n_peers=12, key_bits=10, n_per_family=8)
        assert a.as_text() == b.as_text()

    def test_every_cell_present(self):
        result = measure_query_cost(
            n_keys=120, n_peers=12, key_bits=10, n_per_family=8
        )
        cells = {(r.system, r.family) for r in result.rows}
        assert cells == {
            (s, f)
            for s in ("DLPT", "P-Grid", "PHT")
            for f in ("prefix", "range")
        }
        assert result.checks_passed == 3 * 2 * 8
        assert all(r.n_queries == 8 for r in result.rows)

    def test_mismatch_raises(self):
        from repro.baselines.query_cost import _check

        with pytest.raises(QueryCostMismatch):
            _check("PHT", "range", "00", "01", ["0011"], ["0011", "0100"])
