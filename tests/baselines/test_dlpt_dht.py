"""Hashed (random) mapping: the DLPT-over-DHT baseline of Figure 9."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dlpt_dht import HashedMapping
from repro.core.alphabet import BINARY
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity

binary_keys = st.text(alphabet="01", min_size=1, max_size=8)


def hashed_system(rng, n_peers=6):
    s = DLPTSystem(
        alphabet=BINARY,
        capacity_model=FixedCapacity(1000),
        mapping_factory=HashedMapping,
    )
    s.build(rng, n_peers)
    return s


class TestHashedMapping:
    def test_nodes_assigned_by_hash(self, rng):
        s = hashed_system(rng)
        s.register("1010")
        s.mapping.check_invariants()

    def test_join_leave_migrations(self, rng):
        s = hashed_system(rng, n_peers=3)
        for k in ("000", "010", "101", "111", "0", "1"):
            s.register(k)
        s.add_peer(rng)
        s.mapping.check_invariants()
        victim = s.ring.peers()[0]
        s.remove_peer(victim.id)
        s.mapping.check_invariants()

    def test_reposition_unsupported(self, rng):
        s = hashed_system(rng)
        s.register("1")
        with pytest.raises(NotImplementedError):
            s.mapping.reposition(s.ring.peers()[0], "zzz")

    def test_discovery_still_works(self, rng):
        s = hashed_system(rng)
        for k in ("000", "010", "101"):
            s.register(k)
        out = s.discover("101", rng=rng)
        assert out.satisfied

    @settings(max_examples=25, deadline=None)
    @given(keys=st.lists(binary_keys, min_size=1, max_size=20),
           seed=st.integers(0, 5000))
    def test_invariants_under_churn(self, keys, seed):
        rng = random.Random(seed)
        s = hashed_system(rng, n_peers=3)
        for i, k in enumerate(keys):
            s.register(k)
            if i % 3 == 0:
                s.add_peer(rng)
            if i % 4 == 0 and len(s.ring) > 2:
                victims = s.ring.ids()
                s.remove_peer(victims[rng.randrange(len(victims))])
            s.mapping.check_invariants()


class TestLocalityContrast:
    def test_random_mapping_has_more_physical_hops(self, rng):
        """The Figure 9 effect in miniature: with many peers, the hashed
        mapping turns nearly every logical hop into a peer crossing while
        the lexicographic mapping keeps subtrees co-located."""
        keys = [format(i, "06b") for i in range(40)]

        def mean_physical(mapping_factory):
            r = random.Random(11)
            s = DLPTSystem(
                alphabet=BINARY,
                capacity_model=FixedCapacity(10_000),
                mapping_factory=mapping_factory,
            )
            s.build(r, 20)
            for k in keys:
                s.register(k)
            tot = n = 0
            for k in keys:
                for _ in range(5):
                    out = s.discover(k, rng=r)
                    if out.satisfied:
                        tot += out.physical_hops
                        n += 1
            return tot / n

        lex = mean_physical(None)
        rnd = mean_physical(HashedMapping)
        assert rnd > lex
