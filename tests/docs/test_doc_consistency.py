"""Documentation consistency gate (tier-1).

Keeps the repository discoverable as it grows: every module under
``src/repro/`` carries a docstring, the README's architecture map names
every package, every example states the paper figure/section it animates,
and the README's code blocks actually run (``doctest``).
"""

from __future__ import annotations

import ast
import doctest
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
README = REPO_ROOT / "README.md"
EXAMPLES = REPO_ROOT / "examples"


def repro_modules() -> list[pathlib.Path]:
    return sorted(SRC.rglob("*.py"))


def repro_packages() -> list[str]:
    return sorted(
        p.name for p in SRC.iterdir() if p.is_dir() and (p / "__init__.py").exists()
    )


class TestModuleDocstrings:
    @pytest.mark.parametrize(
        "path", repro_modules(), ids=lambda p: str(p.relative_to(SRC))
    )
    def test_every_module_has_a_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), (
            f"{path.relative_to(REPO_ROOT)} lacks a module docstring; "
            "state what the module implements (and where in the paper it "
            "comes from, if anywhere)"
        )


class TestReadme:
    def test_readme_exists(self):
        assert README.exists(), "the repository must have a root README.md"

    @pytest.mark.parametrize("package", repro_packages())
    def test_architecture_map_names_every_package(self, package):
        text = README.read_text()
        assert f"repro.{package}" in text, (
            f"README.md's architecture map omits the repro.{package} package; "
            "add a row describing it"
        )

    def test_readme_points_at_project_state(self):
        text = README.read_text()
        for pointer in ("ROADMAP.md", "CHANGES.md", "BENCH_micro.json",
                        "docs/benchmarks.md", "docs/reproduction.md",
                        "docs/runtime.md", "docs/queries.md"):
            assert pointer in text, f"README.md should point at {pointer}"

    def test_readme_code_blocks_run(self):
        failures, tests = doctest.testfile(
            str(README), module_relative=False, verbose=False
        )
        assert tests > 0, "README.md should contain runnable doctest examples"
        assert failures == 0, f"{failures} README.md doctest example(s) failed"


class TestBenchmarksDoc:
    def test_schemas_are_documented(self):
        doc = (REPO_ROOT / "docs" / "benchmarks.md").read_text()
        for needle in ("repro-bench/1", "repro-trace/1", "repro-metrics/1",
                       "--mode ratio", "--mode absolute"):
            assert needle in doc, f"docs/benchmarks.md must document {needle}"

    def test_documented_schema_tags_match_the_code(self):
        from repro.experiments.metrics import METRICS_SCHEMA
        from repro.perf.bench import SCHEMA
        from repro.workloads.traces import TRACE_SCHEMA

        doc = (REPO_ROOT / "docs" / "benchmarks.md").read_text()
        for tag in (SCHEMA, TRACE_SCHEMA, METRICS_SCHEMA):
            assert tag in doc


class TestReproductionDoc:
    """docs/reproduction.md: the one-command reproduction guide and the
    figure gallery must track the artifact registry in code."""

    DOC = REPO_ROOT / "docs" / "reproduction.md"

    def test_guide_exists(self):
        assert self.DOC.exists(), (
            "docs/reproduction.md must document the checkout-to-figures "
            "pipeline (python -m repro paper)"
        )

    def test_schemas_and_semantics_are_documented(self):
        doc = self.DOC.read_text()
        for needle in ("repro-result/1", "repro-manifest/1", "REPRO_WORKERS",
                       "--shard", "--force", "python -m repro paper",
                       "sweep_cached"):
            assert needle in doc, f"docs/reproduction.md must document {needle}"

    def test_documented_schema_tags_match_the_code(self):
        from repro.sweeps import MANIFEST_SCHEMA, RESULT_SCHEMA

        doc = self.DOC.read_text()
        for tag in (RESULT_SCHEMA, MANIFEST_SCHEMA):
            assert tag in doc

    def test_every_paper_artifact_has_a_gallery_entry(self):
        """`repro paper` may not grow an artifact without the gallery
        growing a matching section (### <name>) carrying its paper anchor."""
        from repro.sweeps import ARTIFACTS

        doc = self.DOC.read_text()
        for name, artifact in ARTIFACTS.items():
            assert f"### {name}" in doc, (
                f"docs/reproduction.md's figure gallery lacks a section for "
                f"the {name} artifact; add '### {name} — ...'"
            )
            assert artifact.anchor in doc, (
                f"docs/reproduction.md must state {name}'s paper anchor "
                f"({artifact.anchor!r})"
            )

    def test_benchmarks_doc_links_the_guide(self):
        assert "reproduction.md" in (REPO_ROOT / "docs" / "benchmarks.md").read_text(), (
            "docs/benchmarks.md should cross-link docs/reproduction.md"
        )

    def test_readme_documents_repro_workers(self):
        assert "REPRO_WORKERS" in README.read_text(), (
            "README.md must document the REPRO_WORKERS override"
        )


class TestRuntimeDoc:
    """docs/runtime.md: the transport seam, the wire schema and the
    conformance methodology must stay documented as the runtime grows."""

    DOC = REPO_ROOT / "docs" / "runtime.md"

    def test_guide_exists(self):
        assert self.DOC.exists(), (
            "docs/runtime.md must document the Transport interface, the "
            "repro-wire/1 schema and the conformance methodology"
        )

    def test_interface_schema_and_methodology_are_documented(self):
        doc = self.DOC.read_text()
        for needle in ("Transport", "repro-wire/1", "drain", "dead-letter",
                       "SimTransport", "AsyncioTransport",
                       "LoopbackAsyncioTransport", "PeerAsyncioTransport",
                       "conformance", "python -m repro serve",
                       "pytest -m net", "@broker", "DLPTClient",
                       "--processes", "retry_after", "busy",
                       "parse_spec", "SpecError", "DeprecationWarning",
                       "Failure semantics", "ChaosTransport", "chaos:",
                       "--chaos", "--supervise", "RetryPolicy", "jitter",
                       "heartbeat", "crash", "ClusterRecovering",
                       "DLPTClientReset", "crash_storm", "partition"):
            assert needle in doc, f"docs/runtime.md must document {needle}"

    def test_documented_schema_tag_matches_the_code(self):
        from repro.net.bootstrap import REGISTRY_SCHEMA
        from repro.net.wire import WIRE_SCHEMA

        doc = self.DOC.read_text()
        assert WIRE_SCHEMA in doc
        assert REGISTRY_SCHEMA in doc, (
            "docs/runtime.md must document the registry journal schema"
        )

    def test_every_wire_message_type_is_documented(self):
        """The schema reference must enumerate exactly the dataclasses the
        codec accepts — silently adding one would fork doc from code."""
        from repro.net.wire import MESSAGE_TYPES

        doc = self.DOC.read_text()
        for name in MESSAGE_TYPES:
            assert f"`{name}`" in doc, (
                f"docs/runtime.md's repro-wire/1 reference omits {name}"
            )

    def test_counter_invariant_is_stated(self):
        assert "messages_sent == messages_delivered" in self.DOC.read_text()


class TestQueriesDoc:
    """docs/queries.md: the set-query model, its hop accounting and the
    queries: workload axis must stay documented as the feature grows."""

    DOC = REPO_ROOT / "docs" / "queries.md"

    def test_guide_exists(self):
        assert self.DOC.exists(), (
            "docs/queries.md must document the query model, the hop "
            "accounting rules and the queries: workload axis"
        )

    def test_model_accounting_and_axis_are_documented(self):
        doc = self.DOC.read_text()
        for needle in ("ExactQuery", "PrefixQuery", "RangeQuery",
                       "MultiAttributeQuery", "parse_query",
                       "QuerySpecError", "logical_hops", "physical_hops",
                       "Empty band", "SetQueryRequest", "SetQueryReply",
                       "search_query", "query_cost", "queries_issued",
                       "query_hop_histogram", "mixed:n="):
            assert needle in doc, f"docs/queries.md must document {needle}"

    def test_every_spec_kind_is_documented(self):
        from repro.workloads.queries import QUERY_KINDS

        doc = self.DOC.read_text()
        for kind in QUERY_KINDS:
            assert f'"{kind}' in doc, (
                f"docs/queries.md must document the {kind!r} query spec kind"
            )

    def test_cross_links(self):
        doc = self.DOC.read_text()
        assert "runtime.md" in doc and "reproduction.md" in doc
        assert "queries.md" in (REPO_ROOT / "docs" / "runtime.md").read_text(), (
            "docs/runtime.md should cross-link docs/queries.md"
        )
        assert "queries.md" in (REPO_ROOT / "docs" / "reproduction.md").read_text(), (
            "docs/reproduction.md should cross-link docs/queries.md"
        )


class TestExamples:
    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES.glob("*.py")), ids=lambda p: p.name
    )
    def test_example_docstring_states_its_paper_anchor(self, path):
        doc = ast.get_docstring(ast.parse(path.read_text())) or ""
        anchors = ("Figure", "Section", "Table", "Algorithm")
        assert any(a in doc for a in anchors), (
            f"examples/{path.name} must state which paper figure/section/"
            "table/algorithm it reproduces"
        )

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES.glob("*.py")), ids=lambda p: p.name
    )
    def test_example_is_listed_in_readme(self, path):
        assert path.name in README.read_text(), (
            f"README.md's examples section omits examples/{path.name}"
        )
