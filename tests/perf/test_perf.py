"""Perf subsystem: timing statistics, scenario registry, bench schema."""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import (
    DEFAULT_OUT,
    IMPLS,
    SCHEMA,
    host_metadata,
    profile_scenario,
    run_scenario,
    run_suite,
    write_bench,
)
from repro.perf.scenarios import SCENARIOS, SUITES, clustered_corpus, family_prefix
from repro.perf.timing import TimingStats, measure

#: Tiny parameters so tier-1 exercises every scenario end-to-end in ~100ms.
TINY = {
    "build": {"n_peers": 12, "n_keys": 60, "families": 4, "seed": 1},
    "growth": {"n_peers": 12, "n_keys": 60, "families": 4, "seed": 2},
    "churn_storm": {"n_peers": 30, "n_keys": 120, "families": 4, "storm": 5, "seed": 3},
    "crash_storm": {"n_peers": 30, "n_keys": 120, "families": 4, "crashes": 5, "seed": 8},
    "request_flood": {
        "n_peers": 12, "n_keys": 60, "families": 4, "n_requests": 40, "seed": 4,
    },
    "flash_crowd": {
        "n_peers": 12, "n_keys": 60, "families": 4,
        "units": 6, "req_per_unit": 8, "seed": 5,
    },
    "replay": {"n_peers": 10, "units": 6, "load": 0.3, "seed": 6},
    "sweep_cached": {"n_peers": 10, "units": 5, "runs": 1, "loads": [0.2], "seed": 7},
}


class TestTiming:
    def test_measure_runs_fresh_state_per_repetition(self):
        prepared = []

        def prepare():
            prepared.append(object())
            return prepared[-1]

        executed = []
        stats = measure(prepare, executed.append, repeat=3, warmup=2)
        assert len(prepared) == 5  # 2 warmup + 3 timed
        assert executed == prepared  # each repetition got its own state
        assert stats.runs == 3 and stats.warmup == 2

    def test_stats_summary(self):
        stats = TimingStats.from_samples([3.0, 1.0, 2.0], warmup=1)
        assert stats.median_s == 2.0
        assert stats.min_s == 1.0 and stats.max_s == 3.0
        assert stats.mean_s == pytest.approx(2.0)
        d = stats.as_dict()
        assert d["samples"] == [3.0, 1.0, 2.0]

    def test_measure_validates_arguments(self):
        with pytest.raises(ValueError):
            measure(lambda: None, lambda s: None, repeat=0)
        with pytest.raises(ValueError):
            measure(lambda: None, lambda s: None, warmup=-1)


class TestScenarios:
    def test_registry_matches_suites(self):
        for suite, params in SUITES.items():
            assert set(params) == set(SCENARIOS), suite

    def test_clustered_corpus_shape(self):
        corpus = clustered_corpus(__import__("random").Random(0), 40, 4)
        assert len(corpus) == len(set(corpus)) == 40
        prefixes = {k[:3] for k in corpus}
        assert prefixes == {family_prefix(f) for f in range(4)}

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("impl", IMPLS)
    def test_scenario_runs_tiny(self, name, impl):
        scenario = SCENARIOS[name]
        state = scenario.prepare(TINY[name], impl)
        scenario.execute(state)

    def test_seed_and_optimised_storms_migrate_identically(self):
        """The two implementations must do the same logical work — the
        bench compares implementation speed, not workload size."""
        migrations = {}
        scenario = SCENARIOS["churn_storm"]
        for impl in IMPLS:
            state = scenario.prepare(TINY["churn_storm"], impl)
            scenario.execute(state)
            system = state["system"]
            system.check_invariants()
            migrations[impl] = system.mapping.migrations
        assert migrations["seed"] == migrations["optimised"]

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError):
            SCENARIOS["build"].prepare(TINY["build"], "hand-tuned-assembly")

    @pytest.mark.parametrize("name", ["request_flood", "flash_crowd", "replay"])
    def test_request_scenarios_do_identical_work(self, name):
        """Seed (frozen walk) and optimised (indexed batch) must serve the
        same requests to the same effect — the bench times implementation
        speed, not workload divergence."""
        scenario = SCENARIOS[name]
        results = {
            impl: scenario.execute(scenario.prepare(TINY[name], impl))
            for impl in IMPLS
        }
        assert results["seed"] == results["optimised"]


class TestBench:
    def test_run_scenario_block_schema(self):
        block = run_scenario("churn_storm", TINY["churn_storm"], repeat=1, warmup=0)
        assert set(block["impls"]) == set(IMPLS)
        for impl in IMPLS:
            assert block["impls"][impl]["median_s"] >= 0
        assert block["speedup_median"] > 0
        assert block["params"] == TINY["churn_storm"]

    def test_write_bench_stable_layout(self, tmp_path):
        doc = {
            "schema": SCHEMA,
            "suite": "micro",
            "repeat": 1,
            "warmup": 0,
            "scenarios": {},
        }
        path = write_bench(tmp_path / "BENCH_test.json", doc)
        loaded = json.loads(path.read_text())
        assert loaded == doc
        # sort_keys guarantees byte-stable output for identical content.
        assert path.read_text() == json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def test_run_suite_rejects_unknown(self):
        with pytest.raises(ValueError):
            run_suite("galactic")
        with pytest.raises(ValueError):
            run_suite("micro", scenarios=["no_such_scenario"])

    def test_default_out_covers_suites(self):
        # Every timed suite plus the sustained-rate driver has a baseline.
        assert set(DEFAULT_OUT) == set(SUITES) | {"throughput"}

    def test_host_metadata_recorded(self):
        meta = host_metadata()
        assert meta["python"] and meta["platform"]
        assert isinstance(meta["cpu_count"], int) and meta["cpu_count"] >= 1
        doc = run_suite("micro", repeat=1, warmup=0, scenarios=["request_flood"])
        # The micro params are not TINY here, so keep it to the cheapest
        # scenario; what matters is the document layout.  The suite run
        # appends its peak RSS next to the static host fingerprint.
        rss = doc["host"].pop("peak_rss_bytes")
        assert rss is None or (isinstance(rss, int) and rss > 0)
        assert doc["host"] == meta

    def test_profile_scenario_reports_hotspots(self):
        report = profile_scenario(
            "request_flood", TINY["request_flood"], impl="optimised", top=5
        )
        assert "cumtime" in report and "tottime" in report
        assert "discover_batch" in report or "function calls" in report


@pytest.mark.bench
class TestBenchSuites:
    """Tier-2: the real micro suite (seconds, excluded from tier-1 by the
    default ``-m "not bench"`` marker filter in pytest.ini)."""

    def test_micro_suite_end_to_end(self, tmp_path):
        doc = run_suite("micro", repeat=1, warmup=0)
        assert doc["schema"] == SCHEMA
        assert set(doc["scenarios"]) == set(SCENARIOS)
        for name, block in doc["scenarios"].items():
            assert block["speedup_median"] > 0, name
        write_bench(tmp_path / "BENCH_micro.json", doc)
