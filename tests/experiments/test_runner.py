"""Experiment runner: the Section 4 time-unit loop at miniature scale."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    compare_balancers,
    growth_batches,
    run_many,
    run_single,
)
from repro.lb.kchoices import KChoices
from repro.lb.mlt import MLT
from repro.lb.nolb import NoLB
from repro.peers.churn import DYNAMIC, FROZEN
from repro.util.rng import RngStreams
from repro.workloads.keys import blas_routines

TINY = dict(
    n_peers=12,
    corpus=blas_routines()[:60],
    growth_units=3,
    total_units=8,
    load_fraction=0.2,
)


class TestGrowthBatches:
    def test_partition_covers_corpus(self):
        cfg = ExperimentConfig(**TINY)
        batches = growth_batches(cfg, RngStreams(1))
        flat = [k for b in batches for k in b]
        assert sorted(flat) == sorted(cfg.corpus)
        assert len(batches) == cfg.growth_units

    def test_batches_deterministic_per_seed(self):
        cfg = ExperimentConfig(**TINY)
        a = growth_batches(cfg, RngStreams(5))
        b = growth_batches(cfg, RngStreams(5))
        assert a == b


class TestRunSingle:
    def test_produces_full_series(self):
        r = run_single(ExperimentConfig(**TINY), 0)
        assert len(r) == TINY["total_units"]
        assert all(u.issued > 0 for u in r.units)

    def test_tree_grows_then_freezes(self):
        r = run_single(ExperimentConfig(**TINY, churn=FROZEN), 0)
        assert r.units[0].nodes < r.units[3].nodes
        assert r.units[3].nodes == r.units[-1].nodes

    def test_churn_changes_population(self):
        r = run_single(ExperimentConfig(**TINY, churn=DYNAMIC), 0)
        assert all(u.peers >= 2 for u in r.units)

    def test_deterministic_per_run_index(self):
        cfg = ExperimentConfig(**TINY)
        a = run_single(cfg, 2)
        b = run_single(cfg, 2)
        assert a.satisfied_pct == b.satisfied_pct

    def test_run_indices_vary(self):
        cfg = ExperimentConfig(**TINY)
        assert run_single(cfg, 0).satisfied_pct != run_single(cfg, 1).satisfied_pct

    def test_transit_accounting_runs(self):
        r = run_single(ExperimentConfig(**TINY, accounting="transit"), 0)
        assert r.total_issued > 0


class TestRunMany:
    def test_aggregates_runs(self):
        series = run_many(ExperimentConfig(**TINY), 3)
        assert series.n_runs == 3
        assert len(series.mean_curve()) == TINY["total_units"]

    def test_requires_runs(self):
        with pytest.raises(ValueError):
            run_many(ExperimentConfig(**TINY), 0)


class TestCompareBalancers:
    def test_common_random_numbers(self):
        """NoLB and MLT runs share churn + workload streams: with a frozen
        membership their issued request counts per unit are identical.
        (Under churn the counts can drift because repositioned peer ids
        change which peer a leave event victimises.)"""
        cfg = ExperimentConfig(**TINY, churn=FROZEN)
        results = compare_balancers(cfg, [MLT(), NoLB()], n_runs=2)
        issued_mlt = [u.issued for u in results["MLT"].runs[0].units]
        issued_nolb = [u.issued for u in results["NoLB"].runs[0].units]
        assert issued_mlt == issued_nolb

    def test_three_balancer_layout(self):
        cfg = ExperimentConfig(**TINY)
        results = compare_balancers(cfg, [MLT(), KChoices(), NoLB()], n_runs=1)
        assert set(results) == {"MLT", "KC", "NoLB"}
