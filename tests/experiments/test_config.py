"""Experiment configuration: validation and derived descriptions."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.lb.mlt import MLT


class TestValidation:
    def test_defaults_are_paper_scale(self):
        cfg = ExperimentConfig()
        assert cfg.n_peers == 100
        assert cfg.growth_units == 10
        assert cfg.total_units == 50
        assert len(cfg.corpus) >= 600

    def test_too_few_peers(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_peers=1)

    def test_empty_corpus(self):
        with pytest.raises(ValueError):
            ExperimentConfig(corpus=[])

    def test_growth_exceeding_run(self):
        with pytest.raises(ValueError):
            ExperimentConfig(growth_units=60, total_units=50)

    def test_nonpositive_load(self):
        with pytest.raises(ValueError):
            ExperimentConfig(load_fraction=0)


class TestDerived:
    def test_with_lb_preserves_everything_else(self):
        cfg = ExperimentConfig(load_fraction=0.24)
        other = cfg.with_lb(MLT())
        assert other.lb.name == "MLT"
        assert other.load_fraction == 0.24
        assert other.seed == cfg.seed

    def test_describe_mentions_lb_and_load(self):
        text = ExperimentConfig(load_fraction=0.4).describe()
        assert "NoLB" in text and "40%" in text
