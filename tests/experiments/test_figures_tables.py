"""Figure/table harness smoke tests at miniature scale.

Full paper-scale regeneration lives in benchmarks/; these tests check that
every harness runs end-to-end and that the headline *orderings* hold on a
small-but-meaningful configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import (
    FAULT_R_VALUES,
    FAULT_REPAIR_RATES,
    fault_availability,
    fault_repair,
    figure4,
    figure8,
    figure9,
    render_figure_text,
)
from repro.experiments.tables import paper_table2_text, table1, table2
from repro.workloads.keys import grid_service_corpus

SMALL = dict(n_peers=40, corpus=grid_service_corpus()[:300])


@pytest.fixture(scope="module")
def fig4_small():
    return figure4(n_runs=2, **SMALL)


class TestFigureHarnesses:
    def test_figure4_shape(self, fig4_small):
        fig = fig4_small
        assert set(fig.series) == {"MLT enabled", "KC enabled", "No LB"}
        assert len(fig.x) == 50
        assert all(len(v) == 50 for v in fig.series.values())

    def test_figure4_ordering(self, fig4_small):
        """Steady-state: MLT >= KC >= NoLB (the Figure 4 stacking)."""
        fig = fig4_small
        mlt = float(np.mean(fig.series["MLT enabled"][15:]))
        kc = float(np.mean(fig.series["KC enabled"][15:]))
        nolb = float(np.mean(fig.series["No LB"][15:]))
        assert mlt >= kc - 2.0  # small-sample tolerance
        assert mlt >= nolb

    def test_figure_as_table_renders(self, fig4_small):
        text = fig4_small.as_table()
        assert "MLT enabled" in text and len(text.splitlines()) == 52

    def test_figure8_hot_spot_dip(self):
        fig = figure8(n_runs=1, **SMALL)
        mlt = fig.series["MLT enabled"]
        pre = float(np.mean(mlt[25:40]))
        onset = float(np.mean(mlt[40:48]))
        assert onset < pre  # satisfaction falls when the S3L burst starts

    def test_figure9_locality_gain(self):
        fig = figure9(n_runs=1, total_units=60, **SMALL)
        logical = float(np.mean(fig.series["Logical hops"][20:]))
        rnd = float(np.mean(fig.series["Physical hops - random mapping"][20:]))
        lex = float(
            np.mean(fig.series["Physical hops - lexico. mapping with LB (MLT)"][20:])
        )
        # Random mapping pays ~1 physical hop per logical hop; the
        # lexicographic mapping pays substantially fewer (Figure 9).
        assert rnd > lex
        assert rnd == pytest.approx(logical, rel=0.35)


class TestFaultFigures:
    def test_fault_availability_shape_and_ordering(self):
        fig = fault_availability(n_runs=1, **SMALL)
        assert fig.x == list(FAULT_R_VALUES)
        assert fig.x_name == "r"
        for curve in fig.series.values():
            assert len(curve) == len(FAULT_R_VALUES)
            assert np.all((0.0 <= curve) & (curve <= 100.0))
            # Replication buys availability: r>=1 beats running bare.
            assert curve[1:].min() >= curve[0]
        text = render_figure_text(fig)
        assert "% keys available" in text

    def test_fault_repair_shape(self):
        fig = fault_repair(n_runs=1, **SMALL)
        assert fig.x == [round(100 * r) for r in FAULT_REPAIR_RATES]
        for curve in fig.series.values():
            assert len(curve) == len(FAULT_REPAIR_RATES)
            assert np.all(curve > 0)  # every storm forces repair work
        # Repair-cost axes autoscale (not a percentage figure).
        assert "repair ops/crash" in render_figure_text(fig)


class TestTableHarnesses:
    def test_table1_structure_and_monotonicity(self):
        res = table1(n_runs=1, loads=(0.10, 0.80), **SMALL)
        text = res.as_text()
        assert "Load" in text
        s = res.gains["stable"]
        # Gains grow with load (the Table 1 trend).
        assert s[0.80]["MLT"] >= s[0.10]["MLT"]

    def test_table2_rows_and_scaling(self):
        res = table2(scales=((120, 16), (240, 32)), key_bits=12)
        assert {r.system for r in res.rows} == {"DLPT", "PHT", "P-Grid"}
        dlpt = res.rows_for("DLPT")
        pht = res.rows_for("PHT")
        # PHT pays the DHT factor: strictly more hops than DLPT at equal N.
        for d, p in zip(dlpt, pht):
            assert p.mean_routing_hops > d.mean_routing_hops
        text = res.as_text()
        assert "O(D)" in text and "O(D·log P)" in text

    def test_paper_table2_text(self):
        assert "P-Grid" in paper_table2_text()
