"""Parallel runner determinism and the regeneration CLI."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    compare_balancers_parallel,
    default_workers,
    env_workers,
    run_many_parallel,
)
from repro.experiments.runner import run_many
from repro.lb.mlt import MLT
from repro.lb.nolb import NoLB
from repro.workloads.keys import blas_routines

TINY = dict(
    n_peers=10, corpus=blas_routines()[:40], growth_units=2,
    total_units=5, load_fraction=0.2,
)


class TestParallelRunner:
    def test_matches_sequential_exactly(self):
        cfg = ExperimentConfig(**TINY)
        seq = run_many(cfg, 3)
        par = run_many_parallel(cfg, 3, workers=3)
        for a, b in zip(seq.runs, par.runs):
            assert a.satisfied_pct == b.satisfied_pct

    def test_single_worker_avoids_pool(self):
        cfg = ExperimentConfig(**TINY)
        series = run_many_parallel(cfg, 2, workers=1)
        assert series.n_runs == 2

    def test_requires_runs(self):
        with pytest.raises(ValueError):
            run_many_parallel(ExperimentConfig(**TINY), 0)

    def test_compare_balancers_parallel_layout(self):
        cfg = ExperimentConfig(**TINY)
        out = compare_balancers_parallel(cfg, [MLT(), NoLB()], n_runs=2, workers=2)
        assert set(out) == {"MLT", "NoLB"}
        assert all(s.n_runs == 2 for s in out.values())

    def test_compare_matches_sequential(self):
        from repro.experiments.runner import compare_balancers

        cfg = ExperimentConfig(**TINY)
        seq = compare_balancers(cfg, [MLT(), NoLB()], 2)
        par = compare_balancers_parallel(cfg, [MLT(), NoLB()], 2, workers=2)
        for name in seq:
            for a, b in zip(seq[name].runs, par[name].runs):
                assert a.satisfied_pct == b.satisfied_pct

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestEnvWorkers:
    """REPRO_WORKERS: the documented override for every pool size."""

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert env_workers() is None
        assert env_workers(default=3) == 3

    def test_set_overrides_and_is_not_capped(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "24")
        assert env_workers() == 24
        assert default_workers() == 24  # explicit override beats the CPU cap

    def test_blank_treated_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert env_workers(default=2) == 2

    @pytest.mark.parametrize("bad", ["abc", "0", "-3", "2.5"])
    def test_invalid_values_raise_naming_the_variable(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            env_workers()


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig4", "fig8", "fig9", "table1", "table2"):
            assert name in out

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "DLPT" in out and "O(D)" in out

    def test_figure_run_small(self, capsys):
        assert main(["fig4", "--runs", "1", "--peers", "20", "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "MLT enabled" in out and "time" in out


class TestCLISubprocess:
    def test_parallel_workers_path(self):
        """`--workers > 1` routes the sweep through the process pool; run
        in a subprocess so the CLI's module patching cannot leak into this
        test session."""
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fig4", "--runs", "1",
             "--peers", "20", "--workers", "2", "--no-plot"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "MLT enabled" in proc.stdout
        assert "regenerated in" in proc.stdout

    def test_module_entry_point_list(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0
        assert "table2" in proc.stdout
