"""Experiment metrics: unit stats, run series, gain rows, tables."""

from __future__ import annotations

import pytest

from repro.experiments.metrics import (
    ExperimentSeries,
    RunResult,
    UnitStats,
    gain_table_row,
    series_table,
)


def run_with(satisfied, issued):
    r = RunResult()
    for s, i in zip(satisfied, issued):
        r.units.append(UnitStats(issued=i, satisfied=s))
    return r


class TestUnitStats:
    def test_satisfied_pct(self):
        u = UnitStats(issued=50, satisfied=25)
        assert u.satisfied_pct == 50.0

    def test_zero_issued_is_zero_pct(self):
        assert UnitStats().satisfied_pct == 0.0

    def test_mean_hops_over_satisfied(self):
        u = UnitStats(issued=10, satisfied=5, logical_hops=20, physical_hops=10)
        assert u.mean_logical_hops == 4.0
        assert u.mean_physical_hops == 2.0

    def test_mean_hops_with_no_satisfied(self):
        assert UnitStats(issued=3).mean_logical_hops == 0.0


class TestRunResult:
    def test_series_extraction(self):
        r = run_with([1, 2], [10, 10])
        assert r.satisfied_pct == [10.0, 20.0]
        assert r.total_satisfied == 3 and r.total_issued == 20
        assert len(r) == 2


class TestExperimentSeries:
    def test_mean_curve(self):
        s = ExperimentSeries("x", [run_with([0, 10], [10, 10]),
                                   run_with([10, 10], [10, 10])])
        assert list(s.mean_curve("satisfied_pct")) == [50.0, 100.0]
        assert s.n_runs == 2

    def test_steady_state_discards_warmup(self):
        runs = [run_with([0] * 10 + [10] * 10, [10] * 20)]
        s = ExperimentSeries("x", runs)
        assert s.steady_state_satisfaction(warmup=10) == 100.0


class TestGainRow:
    def make_series(self, total):
        return ExperimentSeries("x", [run_with([total], [total * 2])])

    def test_gains_relative_to_nolb(self):
        row = gain_table_row(
            mlt=self.make_series(30), kc=self.make_series(15), nolb=self.make_series(10)
        )
        assert row["MLT"] == pytest.approx(200.0)
        assert row["KC"] == pytest.approx(50.0)

    def test_zero_baseline_rejected(self):
        zero = ExperimentSeries("x", [run_with([0], [10])])
        with pytest.raises(ValueError):
            gain_table_row(self.make_series(1), self.make_series(1), zero)


class TestSeriesTable:
    def test_renders_columns(self):
        text = series_table([0, 1], {"MLT": [1.5, 2.5], "KC": [0.5, 1.0]})
        lines = text.splitlines()
        assert "MLT" in lines[0] and "KC" in lines[0]
        assert "1.50" in text and "0.50" in text
        assert len(lines) == 4  # header + rule + 2 rows
