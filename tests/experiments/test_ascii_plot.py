"""ASCII plot rendering."""

from __future__ import annotations

import pytest

from repro.experiments.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        out = ascii_plot({"a": [0, 5, 10], "b": [10, 5, 0]}, width=30, height=8)
        assert "* a" in out and "+ b" in out
        assert "|" in out

    def test_title_line(self):
        out = ascii_plot({"a": [0, 1]}, title="Figure 4")
        assert out.splitlines()[0] == "Figure 4"

    def test_requires_series(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [1, 2], "b": [1]})

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [1]})

    def test_flat_series_does_not_crash(self):
        out = ascii_plot({"a": [5, 5, 5]})
        assert "*" in out

    def test_explicit_bounds(self):
        out = ascii_plot({"a": [10, 90]}, y_min=0, y_max=100, height=10)
        grid_lines = [l for l in out.splitlines() if "|" in l]
        assert sum(l.count("*") for l in grid_lines) == 2
