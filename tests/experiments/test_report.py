"""Report assembly from archived benchmark results."""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.report import SECTIONS, build_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig4_stable_no_overload.txt").write_text("FIG4 BODY\n")
    (d / "table1_gain_summary.txt").write_text("TABLE1 BODY\n")
    (d / "custom_extra.txt").write_text("EXTRA BODY\n")
    return d


class TestBuildReport:
    def test_known_sections_in_order(self, results_dir):
        text = build_report(results_dir)
        i_fig4 = text.index("Figure 4")
        i_tab1 = text.index("Table 1")
        assert i_fig4 < i_tab1
        assert "FIG4 BODY" in text and "TABLE1 BODY" in text

    def test_unknown_results_appended(self, results_dir):
        text = build_report(results_dir)
        assert "custom_extra" in text and "EXTRA BODY" in text

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path / "nope")

    def test_write_report(self, results_dir, tmp_path):
        out = write_report(tmp_path / "REPORT.md", results_dir)
        assert out.exists()
        assert out.read_text().startswith("# DLPT reproduction")

    def test_section_table_covers_all_benches(self):
        """Every bench archive name used in benchmarks/ has a section."""
        stems = {s for s, _ in SECTIONS}
        bench_dir = pathlib.Path(__file__).parents[2] / "benchmarks"
        import re

        used = set()
        for f in bench_dir.glob("bench_*.py"):
            used |= set(re.findall(r'archive\(\s*"([^"]+)"', f.read_text()))
        assert used <= stems, f"unlisted archives: {used - stems}"
