"""End-to-end scenarios across the whole stack."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import DiscoveryService, DLPTSystem, MLT, NoLB
from repro.core.alphabet import PRINTABLE
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.peers.capacity import UniformCapacity
from repro.peers.churn import DYNAMIC
from repro.workloads.keys import grid_service_corpus, s3l_routines
from repro.workloads.requests import figure8_schedule


class TestGridServiceDiscovery:
    """The paper's motivating scenario: a grid middleware registering
    linear-algebra services and resolving flexible queries."""

    @pytest.fixture(scope="class")
    def deployed(self):
        rng = random.Random(7)
        system = DLPTSystem(capacity_model=UniformCapacity(base=50, ratio=4))
        system.build(rng, n_peers=50)
        svc = DiscoveryService(system)
        for name in grid_service_corpus():
            svc.register(name)
        system.check_invariants()
        return system, svc, rng

    def test_every_service_discoverable(self, deployed):
        system, svc, rng = deployed
        for name in grid_service_corpus()[::25]:
            out = svc.discover(name, rng=rng)
            assert out.satisfied, name
            system.end_time_unit()  # keep budgets fresh

    def test_completion_matches_corpus(self, deployed):
        _, svc, _ = deployed
        assert svc.complete("S3L") == s3l_routines()

    def test_range_over_type_band(self, deployed):
        _, svc, _ = deployed
        out = svc.range_search("dgemm", "dgetrs")
        corpus = grid_service_corpus()
        assert out == [k for k in corpus if "dgemm" <= k <= "dgetrs"]

    def test_tree_size_near_paper(self, deployed):
        system, _, _ = deployed
        # Paper: "the number of nodes around 1000".
        assert 700 <= system.n_nodes <= 2000


class TestChurnResilience:
    def test_heavy_churn_preserves_all_state(self, rng):
        """Under sustained 10%/unit churn every registration survives
        (graceful leaves migrate node state to successors)."""
        system = DLPTSystem()
        system.build(rng, n_peers=30)
        svc = DiscoveryService(system)
        keys = grid_service_corpus()[:200]
        for k in keys:
            svc.register(k)
        for _ in range(20):
            for _ in range(3):
                system.add_peer(rng)
            for _ in range(3):
                ids = system.ring.ids()
                system.remove_peer(ids[rng.randrange(len(ids))])
            system.end_time_unit()
        system.check_invariants()
        assert system.registered_keys() >= set(keys)
        for k in keys[::20]:
            assert svc.discover(k, rng=rng).satisfied
            # The first 200 corpus keys are one lexicographic family (P*),
            # so destination peers saturate quickly: refresh the budget.
            system.end_time_unit()

    def test_shrink_to_two_peers(self, rng):
        system = DLPTSystem()
        system.build(rng, n_peers=10)
        for k in grid_service_corpus()[:50]:
            system.register(k)
        while len(system.ring) > 2:
            system.remove_peer(system.ring.ids()[0])
        system.check_invariants()
        assert len(system.registered_keys()) == 50


class TestFullExperimentPipeline:
    def test_hotspot_run_with_mlt_recovers(self):
        """Miniature Figure 8: MLT regains satisfaction after the S3L burst
        ends; no-LB stays depressed during it."""
        base = dict(
            n_peers=40,
            corpus=grid_service_corpus()[:400],
            total_units=70,
            load_fraction=0.4,
            churn=DYNAMIC,
            schedule=figure8_schedule(),
        )
        mlt = run_single(ExperimentConfig(lb=MLT(), **base), 0)
        nolb = run_single(ExperimentConfig(lb=NoLB(), **base), 0)
        mlt_burst = float(np.mean(mlt.satisfied_pct[55:70]))
        nolb_burst = float(np.mean(nolb.satisfied_pct[55:70]))
        assert mlt_burst > nolb_burst

    def test_invariants_hold_after_full_run(self):
        """Run the paper loop end-to-end, then audit every invariant."""
        from repro.experiments.runner import build_system, growth_batches
        from repro.util.rng import RngStreams

        cfg = ExperimentConfig(
            n_peers=25, corpus=grid_service_corpus()[:150], total_units=12,
            growth_units=4, churn=DYNAMIC, lb=MLT(),
        )
        streams = RngStreams(cfg.seed).spawn(0)
        system = build_system(cfg, streams)
        lb_rng = streams.stream("lb")
        churn_rng = streams.stream("churn")
        for unit, batch in enumerate(growth_batches(cfg, streams)):
            cfg.lb.run_balancing(system, lb_rng)
            for k in batch:
                system.register(k)
            if len(system.ring) > 3:
                ids = system.ring.ids()
                system.remove_peer(ids[churn_rng.randrange(len(ids))])
            system.add_peer(churn_rng)
            system.end_time_unit()
            system.check_invariants()


class TestPublicAPI:
    def test_package_level_imports(self):
        import repro

        assert repro.__version__
        assert {"DLPTSystem", "DiscoveryService", "MLT", "KChoices", "NoLB"} <= set(
            repro.__all__
        )

    def test_quickstart_docstring_flow(self):
        rng = random.Random(1)
        system = DLPTSystem()
        system.build(rng, n_peers=16)
        svc = DiscoveryService(system)
        svc.register("dgemm")
        svc.register("dgemv")
        assert svc.complete("dgem") == ["dgemm", "dgemv"]
        assert svc.discover("dgemm", rng=rng).satisfied
