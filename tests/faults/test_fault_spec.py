"""Fault spec parsing: validation at config time, signature stability."""

from __future__ import annotations

import pytest

from repro.faults import (
    CorrelatedCrash,
    CrashStorm,
    FaultPlan,
    FaultSpecError,
    MixedFaults,
    PartitionSchedule,
    faults_signature,
    parse_faults,
)
from repro.sweeps.plan import canonical_json


class TestParseStrings:
    def test_none_passes_through(self):
        assert parse_faults(None) is None

    def test_crash_storm(self):
        plan = parse_faults("crash_storm:0.02")
        assert isinstance(plan.schedule, CrashStorm)
        assert plan.schedule.rate == 0.02
        assert plan.replication == 1 and plan.repair_every == 1

    def test_crash_storm_with_window_and_policy(self):
        plan = parse_faults("crash_storm:0.05:start=10:end=40:r=2:repair_every=4")
        assert plan.schedule.start == 10 and plan.schedule.end == 40
        assert plan.replication == 2 and plan.repair_every == 4

    def test_replication_can_be_disabled(self):
        assert parse_faults("crash_storm:0.02:r=0").replication == 0

    def test_correlated(self):
        plan = parse_faults("correlated:0.3@40")
        assert isinstance(plan.schedule, CorrelatedCrash)
        assert plan.schedule.fraction == 0.3 and plan.schedule.at == 40
        assert plan.schedule.timed_events() == [(40, plan.schedule._burst)]

    def test_partition(self):
        plan = parse_faults("partition:8@40:fraction=0.25")
        schedule = plan.schedule
        assert isinstance(schedule, PartitionSchedule)
        assert (schedule.duration, schedule.at, schedule.fraction) == (8, 40, 0.25)

    def test_partition_defaults_to_unit_zero(self):
        assert parse_faults("partition:8").schedule.at == 0

    def test_plan_and_schedule_pass_through(self):
        plan = FaultPlan(schedule=CrashStorm(0.1), replication=3)
        assert parse_faults(plan) is plan
        wrapped = parse_faults(CrashStorm(0.1))
        assert wrapped.replication == 1  # default policy

    @pytest.mark.parametrize("bad", [
        "bogus:1",                       # unknown kind
        "crash_storm",                   # missing rate
        "crash_storm:2.0",               # rate out of range
        "crash_storm:0.05:k=3",          # unknown option
        "correlated:0.3",                # missing @unit
        "correlated:0.3@x",              # non-numeric unit
        "partition:0@5",                 # zero duration
        "partition:8@40:fraction=1.5",   # fraction out of range
        "crash_storm:0.05:r=-1",         # negative replication
        "crash_storm:0.05:repair_every=0",
        42,                              # not a spec at all
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            parse_faults(bad)


class TestParseDicts:
    def test_generic_dict(self):
        plan = parse_faults({"kind": "crash_storm", "rate": 0.05, "r": 2})
        assert plan.schedule.rate == 0.05 and plan.replication == 2

    def test_mixed_composes_phases(self):
        plan = parse_faults({
            "kind": "mixed",
            "phases": [
                {"start": 10, "end": 30, "faults": "crash_storm:0.05"},
                {"start": 30, "end": 40, "faults": "partition:5@32"},
            ],
            "r": 2,
        })
        assert isinstance(plan.schedule, MixedFaults)
        assert plan.replication == 2
        assert plan.schedule.crash_rate(15) == 0.05
        assert plan.schedule.crash_rate(35) == 0.0
        assert plan.schedule.timed_events() == [(32, plan.schedule.phases[1].schedule._start)]

    def test_mixed_drops_out_of_window_events(self):
        plan = parse_faults({
            "kind": "mixed",
            "phases": [{"start": 0, "end": 10, "faults": "correlated:0.3@40"}],
        })
        assert plan.schedule.timed_events() == []

    def test_policy_rejected_inside_phases(self):
        with pytest.raises(FaultSpecError):
            parse_faults({
                "kind": "mixed",
                "phases": [{"start": 0, "end": 10, "faults": "crash_storm:0.05:r=2"}],
            })

    def test_overlapping_phases_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_faults({
                "kind": "mixed",
                "phases": [
                    {"start": 0, "end": 20, "faults": "crash_storm:0.05"},
                    {"start": 10, "end": 30, "faults": "crash_storm:0.01"},
                ],
            })


class TestSignature:
    def test_none_signs_none(self):
        assert faults_signature(None) is None

    def test_signature_is_canonical_json_serialisable(self):
        plan = parse_faults({
            "kind": "mixed",
            "phases": [
                {"start": 10, "end": 30, "faults": "crash_storm:0.05"},
                {"start": 30, "end": 40, "faults": "partition:5@32"},
            ],
        })
        canonical_json(faults_signature(plan))  # must not raise

    def test_equivalent_specs_share_a_signature(self):
        a = faults_signature(parse_faults("crash_storm:0.05:r=2"))
        b = faults_signature(parse_faults({"kind": "crash_storm", "rate": 0.05, "r": 2}))
        assert a == b

    @pytest.mark.parametrize("one, other", [
        ("crash_storm:0.05", "crash_storm:0.02"),
        ("crash_storm:0.05", "crash_storm:0.05:start=10"),
        ("crash_storm:0.05", "crash_storm:0.05:r=2"),
        ("crash_storm:0.05", "crash_storm:0.05:repair_every=4"),
        ("partition:8@40", "partition:9@40"),
        ("correlated:0.3@40", "correlated:0.3@41"),
    ])
    def test_semantic_changes_change_the_signature(self, one, other):
        assert faults_signature(parse_faults(one)) != faults_signature(parse_faults(other))
