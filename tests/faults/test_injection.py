"""Fault injection through the experiment runner: metrics, determinism,
record/replay, and the sweep-store identity."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import (
    run_metrics_dict,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.experiments.runner import record_single, replay_single, run_single
from repro.faults.spec import FaultSpecError
from repro.lb.kchoices import KChoices
from repro.sweeps.plan import SweepCell


def config(faults, **overrides):
    kwargs = dict(n_peers=40, total_units=30, faults=faults)
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def metrics_json(result) -> str:
    return json.dumps(run_metrics_dict(result), sort_keys=True)


class TestRunnerIntegration:
    def test_crash_storm_reports_availability_and_repair(self):
        result = run_single(config("crash_storm:0.05:r=2"))
        assert sum(u.crashes for u in result.units) > 0
        assert sum(u.keys_lost for u in result.units) > 0
        assert sum(u.repair_cost for u in result.units) > 0
        assert sum(u.keys_recovered for u in result.units) > 0
        final = result.units[-1]
        assert final.keys_expected > 0
        assert 0.0 < final.key_availability_pct <= 100.0

    def test_fault_free_runs_are_untouched(self):
        result = run_single(config(None))
        assert all(u.crashes == 0 and u.repair_cost == 0 for u in result.units)
        assert all(u.key_availability_pct == 100.0 for u in result.units[10:])

    def test_runs_are_deterministic(self):
        cfg = config("crash_storm:0.05:r=1")
        assert metrics_json(run_single(cfg)) == metrics_json(run_single(cfg))

    def test_replication_zero_loses_keys_for_good(self):
        bare = run_single(config("crash_storm:0.10:r=0", seed=5))
        replicated = run_single(config("crash_storm:0.10:r=2", seed=5))
        assert sum(u.keys_unrecoverable for u in bare.units) > 0
        assert (replicated.units[-1].key_availability_pct
                > bare.units[-1].key_availability_pct)

    def test_correlated_crash_fires_once_at_its_unit(self):
        result = run_single(config("correlated:0.3@15"))
        crashes = [u.crashes for u in result.units]
        # ~30% of the population (the unit's churn moves the exact base).
        assert abs(crashes[15] - 0.3 * result.units[14].peers) <= 3
        assert sum(crashes[:15]) == 0 and sum(crashes[16:]) == 0

    def test_partition_drops_requests_then_heals(self):
        result = run_single(config("partition:5@12:fraction=0.4"))
        partitioned = [u.partitioned for u in result.units]
        assert sum(partitioned[12:17]) > 0
        assert sum(partitioned[:12]) == 0 and sum(partitioned[17:]) == 0
        window = result.units[12:17]
        assert sum(u.dropped for u in window) > 0
        # Partitions hide data, they do not destroy it.
        assert all(u.keys_lost == 0 for u in result.units)

    def test_deferred_repair_measures_time_to_repair(self):
        result = run_single(config("crash_storm:0.08:repair_every=4"))
        ttr: dict[int, int] = {}
        for u in result.units:
            for delay, count in u.ttr_histogram.items():
                ttr[delay] = ttr.get(delay, 0) + count
        assert ttr and max(ttr) > 0  # some crash waited for the cadence

    def test_bad_spec_fails_at_config_time(self):
        with pytest.raises(FaultSpecError):
            config("crash_storm:-1")

    def test_mlt_reposition_does_not_forfeit_replicas(self):
        """MLT renames peers while rebalancing; replica stores and
        partition membership follow the peer, so the balancer comparison
        under identical faults is not biased by bookkeeping."""
        from repro.lb.mlt import MLT
        from repro.lb.nolb import NoLB

        results = {}
        for lb in (NoLB(), MLT()):
            r = run_single(
                ExperimentConfig(n_peers=50, faults="crash_storm:0.05:r=3", lb=lb)
            )
            results[lb.name] = sum(u.keys_unrecoverable for u in r.units)
        # r=3 makes losses vanishingly rare; above all, MLT must not
        # manufacture losses NoLB does not see under the same crashes.
        assert results["MLT"] == results["NoLB"] == 0


class TestRecordReplay:
    def test_fault_trace_replays_byte_identically(self):
        cfg = config("crash_storm:0.05:r=1")
        recorded, trace = record_single(cfg)
        assert sum(len(u.faults) for u in trace.units) > 0
        replayed = replay_single(cfg, trace)
        assert metrics_json(recorded) == metrics_json(replayed)

    def test_trace_round_trips_fault_events(self):
        from repro.workloads.traces import WorkloadTrace

        _, trace = record_single(config("partition:5@12:fraction=0.4"))
        again = WorkloadTrace.loads(trace.dumps())
        assert trace.dumps() == again.dumps()
        assert [u.faults for u in again.units] == [u.faults for u in trace.units]

    @pytest.mark.parametrize("events", [
        [["crash"]],                      # missing index
        [["partition", 5]],               # missing count/duration
        [["crash", "abc"]],               # non-numeric payload
        [["crash", -3]],                  # negative index wraps silently
        [["partition", 5, 10, -2]],       # negative duration no-ops silently
        [["partition", 5, 0, 3]],         # empty arc
        [["meteor", 1]],                  # unknown kind
        [[]],                             # empty event
    ])
    def test_malformed_fault_events_fail_at_load_time(self, events):
        """Bad fault events must raise TraceError when the trace loads —
        like every other trace field — not crash mid-replay."""
        from repro.workloads.traces import TraceError, WorkloadTrace

        _, trace = record_single(config(None))
        trace.units[0].faults = events
        with pytest.raises(TraceError):
            WorkloadTrace.loads(trace.dumps())

    def test_replay_holds_faults_fixed_across_policies(self):
        recorded, trace = record_single(config("crash_storm:0.05:r=2", seed=9))
        weaker = replay_single(config("crash_storm:0.05:r=0", seed=9), trace)
        assert (sum(u.crashes for u in weaker.units)
                == sum(u.crashes for u in recorded.units))
        assert (sum(u.keys_unrecoverable for u in weaker.units)
                >= sum(u.keys_unrecoverable for u in recorded.units))

    def test_cli_replay_with_policy_is_byte_identical(self, tmp_path, capsys):
        """`repro run --replay t --faults <recording spec>` reproduces the
        recording's metrics byte-for-byte: the trace fixes the events, the
        spec's policy half re-selects the recording's response."""
        from repro.experiments.cli import main

        trace, m1, m2 = tmp_path / "t.jsonl", tmp_path / "m1.json", tmp_path / "m2.json"
        spec = "crash_storm:0.05:r=2"
        args = ["run", "--peers", "40", "--lb", "mlt"]
        assert main(args + ["--units", "25", "--faults", spec,
                            "--trace", str(trace), "--metrics-out", str(m1)]) == 0
        assert main(args + ["--replay", str(trace), "--faults", spec,
                            "--metrics-out", str(m2)]) == 0
        capsys.readouterr()
        assert m1.read_bytes() == m2.read_bytes()

    def test_replay_under_fault_free_config_applies_the_trace(self):
        _, trace = record_single(config("crash_storm:0.05:r=1"))
        replayed = replay_single(
            ExperimentConfig(n_peers=40, total_units=30, lb=KChoices(k=4)), trace
        )
        assert sum(u.crashes for u in replayed.units) > 0


class TestIdentity:
    def test_signature_includes_the_fault_axis(self):
        # Fault-free configs keep their pre-fault signature (no key at
        # all), so sweep-store cells computed before the axis existed stay
        # addressable; fault-bearing configs sign the full plan.
        base = ExperimentConfig().signature()
        assert "faults" not in base
        faulty = ExperimentConfig(faults="crash_storm:0.02").signature()
        assert faulty["faults"]["schedule"]["kind"] == "crash_storm"

    def test_fault_axis_changes_the_cell_hash(self):
        plain = SweepCell(config=ExperimentConfig(), n_runs=2, label="a")
        storm = SweepCell(
            config=ExperimentConfig(faults="crash_storm:0.02"), n_runs=2, label="a"
        )
        stronger = SweepCell(
            config=ExperimentConfig(faults="crash_storm:0.02:r=2"), n_runs=2, label="a"
        )
        assert len({plain.key(), storm.key(), stronger.key()}) == 3

    def test_fault_fields_round_trip_through_the_store_serde(self):
        result = run_single(config("crash_storm:0.08:repair_every=4"))
        doc = run_result_to_dict(result)
        again = run_result_to_dict(run_result_from_dict(doc))
        assert json.dumps(doc, sort_keys=True) == json.dumps(again, sort_keys=True)

    def test_pre_fault_documents_still_load(self):
        doc = run_result_to_dict(run_single(config(None)))
        for unit in doc["units"]:
            for key in ("crashes", "partitioned", "keys_lost", "keys_recovered",
                        "keys_unrecoverable", "repair_cost", "keys_present",
                        "keys_expected", "ttr_histogram"):
                del unit[key]
        loaded = run_result_from_dict(doc)
        assert all(u.crashes == 0 and u.ttr_histogram == {} for u in loaded.units)
