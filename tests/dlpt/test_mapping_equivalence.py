"""Migration equivalence: interval-batched mapping ≡ the seed's per-label one.

The PR that introduced the indexed, interval-batched
:class:`repro.dlpt.mapping.LexicographicMapping` (and the hash-space
equivalent in :class:`repro.baselines.dlpt_dht.HashedMapping`) must be a
pure performance change: on any sequence of joins, leaves, repositions and
registrations, the ``host`` map, the per-peer node sets and the
``migrations`` counter must be byte-identical to the seed implementation
kept in :mod:`repro.perf.reference`.  This property test drives both
implementations in lockstep through random operation sequences.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dlpt_dht import HashedMapping
from repro.core.alphabet import Alphabet
from repro.core.keyspace import in_interval_open_open
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity
from repro.perf.reference import SeedHashedMapping, SeedLexicographicMapping

ALPHABET = Alphabet(digits=("a", "b", "c"), name="abc")

ids = st.text(alphabet="abc", min_size=1, max_size=6)
keys = st.text(alphabet="abc", min_size=1, max_size=8)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("join"), ids),
        st.tuples(st.just("leave"), st.integers(0, 10**6)),
        st.tuples(st.just("insert"), keys),
        st.tuples(st.just("reposition"), st.integers(0, 10**6), ids),
    ),
    max_size=40,
)


def _make_pair(mapping_factory_a, mapping_factory_b):
    systems = []
    for factory in (mapping_factory_a, mapping_factory_b):
        s = DLPTSystem(
            alphabet=ALPHABET,
            capacity_model=FixedCapacity(1000),
            mapping_factory=factory,
        )
        systems.append(s)
    return systems


def _snapshot(system: DLPTSystem):
    return (
        {lbl: peer.id for lbl, peer in system.mapping.host.items()},
        {p.id: sorted(p.nodes) for p in system.ring},
        system.mapping.migrations,
    )


def _assert_equivalent(sys_a: DLPTSystem, sys_b: DLPTSystem) -> None:
    assert _snapshot(sys_a) == _snapshot(sys_b)
    sys_a.check_invariants()
    sys_b.check_invariants()


def _apply(system: DLPTSystem, op, rng: random.Random) -> None:
    """Apply one operation; parameters are fully explicit so the same call
    is replayable on the twin system without consuming shared RNG state."""
    kind = op[0]
    ring = system.ring
    if kind == "join":
        pid = op[1]
        if pid not in ring:
            try:
                system.add_peer(rng, peer_id=pid, capacity=7)
            except ValueError:
                pass  # hash-position collision: identical on both twins
    elif kind == "leave":
        if len(ring) > 1:
            system.remove_peer(ring.id_at(op[1] % len(ring)))
    elif kind == "insert":
        if len(ring) > 0:
            system.register(op[1])
    elif kind == "reposition":
        if len(ring) < 2 or not getattr(system.mapping, "supports_reposition", False):
            return
        peer = ring.peer_at(op[1] % len(ring))
        new_id = op[2]
        pred, succ = ring.predecessor(peer.id), ring.successor(peer.id)
        if new_id in ring or not in_interval_open_open(new_id, pred.id, succ.id):
            return
        system.mapping.reposition(peer, new_id)


class TestLexicographicEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(ops=operations, seed=st.integers(0, 2**16))
    def test_lockstep_equivalence(self, ops, seed):
        optimised, reference = _make_pair(None, SeedLexicographicMapping)
        for op in ops:
            _apply(optimised, op, random.Random(seed))
            _apply(reference, op, random.Random(seed))
            _assert_equivalent(optimised, reference)

    def test_wrapped_arc_reposition_equivalence(self):
        """The min peer sliding across the key-space origin (the trickiest
        interval arithmetic) must migrate identical label sets."""
        optimised, reference = _make_pair(None, SeedLexicographicMapping)
        rng = random.Random(7)
        for system in (optimised, reference):
            for pid in ("aab", "bbb", "ccb"):
                system.add_peer(rng, peer_id=pid, capacity=7)
            for key in ("aaa", "abc", "bab", "cab", "ccc", "cccc"):
                system.register(key)
        for system in (optimised, reference):
            # "aab" is P_min; its pred arc (ccb → aab) wraps the origin.
            peer = system.ring.peer("aab")
            moved = system.mapping.reposition(peer, "cccb")
            assert moved >= 1  # absorbs/sheds across the origin
        _assert_equivalent(optimised, reference)


class TestHashedEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(ops=operations, seed=st.integers(0, 2**16))
    def test_lockstep_equivalence(self, ops, seed):
        optimised, reference = _make_pair(HashedMapping, SeedHashedMapping)
        for op in ops:
            _apply(optimised, op, random.Random(seed))
            _apply(reference, op, random.Random(seed))
            _assert_equivalent(optimised, reference)
