"""Protocol behaviour under message loss and MLT/mapping guards.

The Section 3 protocols assume reliable delivery (no acknowledgements or
retransmissions in the pseudo-code).  These tests document the observable
failure modes under loss — the engine must *detect* inconsistency (via its
checkers or dead-letter counters), never hang or corrupt silently into an
unflagged state.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.dlpt_dht import HashedMapping
from repro.core.alphabet import BINARY
from repro.dlpt.protocol import ProtocolEngine
from repro.dlpt.system import DLPTSystem
from repro.lb.mlt import MLT
from repro.net.transport import SimTransport
from repro.peers.capacity import FixedCapacity
from repro.sim.network import Network
from repro.sim.engine import Simulator


class TestMessageLoss:
    def _lossy_engine(self, loss_rate: float, seed: int = 1) -> ProtocolEngine:
        sim = Simulator()
        net = Network(sim, loss_rate=loss_rate, rng=random.Random(seed))
        return ProtocolEngine(transport=SimTransport(sim=sim, network=net))

    def test_lossless_baseline(self):
        eng = self._lossy_engine(0.0)
        eng.bootstrap_peer("mmmm")
        for k in ("10", "1010", "1001"):
            eng.insert_data(k)
            eng.run()
        eng.check_tree()
        assert eng.net.messages_dropped == 0

    def test_loss_is_always_observable(self):
        """Under heavy loss the run still terminates, and every failure is
        visible: either the drop counter advanced, a message was parked
        forever (pending), or a consistency checker trips."""
        eng = self._lossy_engine(0.4, seed=7)
        eng.bootstrap_peer("mmmm")
        for k in ("dgemm", "dgemv", "daxpy", "sgemm"):
            eng.insert_data(k)
        eng.run()  # terminates despite loss (no retransmission loops)
        observable = (
            eng.net.messages_dropped > 0
            or eng.pending_node_messages
            or eng.dead_node_messages > 0
        )
        consistent = True
        try:
            eng.check_tree()
            eng.check_mapping()
        except AssertionError:
            consistent = False
        assert observable or consistent

    def test_join_survives_if_its_messages_get_through(self):
        rng = random.Random(3)
        for seed in range(5):
            eng = self._lossy_engine(0.2, seed=seed)
            eng.bootstrap_peer("mmmm")
            eng.join_peer("aaaa")
            eng.run()
            peer = eng.peers["aaaa"]
            # Either fully joined or visibly not joined — never half-state
            # where it believes it has a ring position without a successor.
            assert (peer.pred is None) == (peer.succ is None)


class TestMappingGuards:
    def test_mlt_skips_hashed_mapping(self, rng):
        """MLT has no lever under the random mapping (a peer's hash-space
        position is fixed); the sweep must be a safe no-op, not a crash."""
        system = DLPTSystem(
            alphabet=BINARY,
            capacity_model=FixedCapacity(5),
            mapping_factory=HashedMapping,
        )
        system.build(rng, 6)
        for k in ("000", "101", "111"):
            system.register(k)
        for _ in range(10):
            system.discover("101", rng=rng)
        system.end_time_unit()
        assert MLT().run_balancing(system, rng) == 0
        system.mapping.check_invariants()

    def test_lexicographic_mapping_advertises_reposition(self, rng):
        system = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(5))
        system.build(rng, 3)
        assert system.mapping.supports_reposition


class TestLegacyConstructor:
    """The transport-first API: sim=/network= still works but warns."""

    def test_sim_network_kwargs_warn_but_work(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.warns(DeprecationWarning, match="transport="):
            eng = ProtocolEngine(sim=sim, network=net)
        eng.bootstrap_peer("mmmm")
        eng.insert_data("10")
        eng.run()
        assert eng.node_labels() == {"10"}

    def test_transport_plus_legacy_kwargs_rejected(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ValueError, match="not both"):
            ProtocolEngine(sim=sim, transport=SimTransport(sim=sim, network=net))

    def test_bare_constructor_stays_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ProtocolEngine()
