"""Discovery routing: the up-then-down traversal of Section 2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pgcp import PGCPTree
from repro.dlpt.routing import (
    DiscoveryRouter,
    route_path,
    route_up_only,
    subtree_root_for_prefix,
)
from repro.workloads.keys import paper_figure1_binary_keys

binary_keys = st.text(alphabet="01", min_size=1, max_size=10)


def tree_of(keys):
    t = PGCPTree()
    for k in keys:
        t.insert(k)
    return t


@pytest.fixture
def fig1_tree():
    return tree_of(paper_figure1_binary_keys())


class TestRoutePath:
    def test_request_at_target(self, fig1_tree):
        p = route_path(fig1_tree, "10101", "10101")
        assert p.found and p.labels == ["10101"] and p.logical_hops == 0

    def test_up_then_down(self, fig1_tree):
        p = route_path(fig1_tree, "01", "10111")
        assert p.found
        assert p.labels == ["01", "", "101", "10111"]
        assert p.logical_hops == 3

    def test_down_only_from_ancestor(self, fig1_tree):
        p = route_path(fig1_tree, "101", "101111")
        assert p.found
        assert p.labels == ["101", "10111", "101111"]

    def test_up_only_to_ancestor(self, fig1_tree):
        p = route_path(fig1_tree, "101111", "10111")
        assert p.found and p.labels == ["101111", "10111"]

    def test_missing_key_stops_at_neighbourhood(self, fig1_tree):
        p = route_path(fig1_tree, "01", "1110")
        assert not p.found
        assert p.labels[-1] == ""  # no child of ε towards 11…

    def test_missing_key_below_leaf(self, fig1_tree):
        p = route_path(fig1_tree, "01", "1010100")
        assert not p.found
        assert p.labels[-1] == "10101"

    def test_missing_key_prefixing_a_node(self, fig1_tree):
        # key 1010 would sit between 101 and 10101: not found.
        p = route_path(fig1_tree, "10111", "1010")
        assert not p.found

    def test_unknown_entry_raises(self, fig1_tree):
        with pytest.raises(KeyError):
            route_path(fig1_tree, "zz", "01")

    def test_structural_node_reachable(self, fig1_tree):
        # Routing to a structural label succeeds (found means label match;
        # data presence is the service layer's concern).
        p = route_path(fig1_tree, "01", "101")
        assert p.found

    @settings(max_examples=100)
    @given(keys=st.lists(binary_keys, min_size=1, max_size=20), data=st.data())
    def test_every_key_reachable_from_every_entry(self, keys, data):
        tree = tree_of(keys)
        labels = sorted(tree.labels())
        entry = data.draw(st.sampled_from(labels))
        target = data.draw(st.sampled_from(sorted(keys)))
        p = route_path(tree, entry, target)
        assert p.found and p.labels[-1] == target
        assert p.labels[0] == entry

    @settings(max_examples=100)
    @given(keys=st.lists(binary_keys, min_size=1, max_size=20), data=st.data())
    def test_path_is_a_tree_walk(self, keys, data):
        """Consecutive path labels are parent/child in the tree."""
        tree = tree_of(keys)
        labels = sorted(tree.labels())
        entry = data.draw(st.sampled_from(labels))
        target = data.draw(st.sampled_from(sorted(keys)))
        p = route_path(tree, entry, target)
        for a, b in zip(p.labels, p.labels[1:]):
            na, nb = tree.node(a), tree.node(b)
            assert nb.parent is na or na.parent is nb

    @settings(max_examples=100)
    @given(keys=st.lists(binary_keys, min_size=1, max_size=20), data=st.data())
    def test_hops_bounded_by_twice_depth(self, keys, data):
        tree = tree_of(keys)
        entry = data.draw(st.sampled_from(sorted(tree.labels())))
        target = data.draw(st.sampled_from(sorted(keys)))
        p = route_path(tree, entry, target)
        assert p.logical_hops <= 2 * max(tree.depth(), 1)


class _OnePeerMapping:
    """Trivial mapping stand-in: every label hosted by one fake peer."""

    class _FakePeer:
        id = "peer"

    def __init__(self):
        self.peer = self._FakePeer()
        self.version = 0

    def host_of(self, label):
        return self.peer


class TestDiscoveryRouter:
    def router_for(self, tree, mapping=None):
        router = DiscoveryRouter(tree, mapping or _OnePeerMapping())
        router.sync()
        return router

    def test_spine_is_root_path_of_present_key(self, fig1_tree):
        router = self.router_for(fig1_tree)
        labels, found = router.spine("101111")
        assert found and list(labels) == ["", "101", "10111", "101111"]

    def test_spine_of_absent_key_stops_at_neighbourhood(self, fig1_tree):
        router = self.router_for(fig1_tree)
        labels, found = router.spine("1010100")
        assert not found and labels[-1] == "10101"

    def test_empty_spine_when_root_does_not_prefix(self):
        tree = tree_of(["10", "11"])  # root "1"
        router = self.router_for(tree)
        labels, found = router.spine("01")
        assert labels == () and not found

    @settings(max_examples=80)
    @given(keys=st.lists(binary_keys, min_size=1, max_size=20), data=st.data())
    def test_resolve_matches_route_path(self, keys, data):
        """Hop counts from the indexed resolution equal the walked path's
        (physical hops degenerate under a one-peer mapping; logical hops
        and the destination are the strong check)."""
        tree = tree_of(keys)
        router = self.router_for(tree)
        labels = sorted(tree.labels())
        entry = data.draw(st.sampled_from(labels))
        target = data.draw(
            st.one_of(st.sampled_from(sorted(keys)), binary_keys)
        )
        resolved = router.resolve(target, entry)
        path = route_path(tree, entry, target)
        assert resolved is not None
        dest, _, found, logical, physical = resolved
        assert found == path.found
        assert dest == path.labels[-1]
        assert logical == path.logical_hops
        assert physical == 0

    def test_version_guard_invalidates_on_mutation(self, fig1_tree):
        router = self.router_for(fig1_tree)
        assert router.spine("10101")[1]
        fig1_tree.insert("1010")  # structural change bumps tree.version
        router.sync()
        labels, found = router.spine("1010")
        assert found and labels[-1] == "1010"

    def test_warm_equals_lazy(self, fig1_tree):
        mapping = _OnePeerMapping()
        lazy = self.router_for(fig1_tree, mapping)
        warm = self.router_for(fig1_tree, mapping)
        warm.warm()
        for label in sorted(fig1_tree.labels()):
            assert warm.node_info(label) == lazy.node_info(label)
            assert warm.spine(label) == lazy.spine(label)


class TestUpOnlyAndSubtree:
    def test_route_up_only_stops_at_covering_ancestor(self, fig1_tree):
        labels = route_up_only(fig1_tree, "10101", "10111")
        assert labels == ["10101", "101"]

    def test_subtree_root_exact_node(self, fig1_tree):
        assert subtree_root_for_prefix(fig1_tree, "101").label == "101"

    def test_subtree_root_between_nodes(self, fig1_tree):
        # Prefix 1010 is covered by node 10101.
        assert subtree_root_for_prefix(fig1_tree, "1010").label == "10101"

    def test_subtree_root_missing_band(self, fig1_tree):
        assert subtree_root_for_prefix(fig1_tree, "11") is None

    def test_subtree_root_of_empty_tree(self):
        assert subtree_root_for_prefix(PGCPTree(), "1") is None
