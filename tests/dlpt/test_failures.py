"""Crash failures, successor replication and tree repair."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import BINARY
from repro.dlpt.failures import ReplicationManager, crash_peer, repair
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity

KEYS = ["000", "001", "010", "011", "100", "101", "110", "111"]


def build(rng, n_peers=8, keys=KEYS):
    s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(1000))
    s.build(rng, n_peers)
    for k in keys:
        s.register(k)
    return s


class TestReplication:
    def test_factor_must_be_positive(self, rng):
        with pytest.raises(ValueError):
            ReplicationManager(build(rng), factor=0)

    def test_replicas_on_distinct_successors(self, rng):
        s = build(rng)
        rep = ReplicationManager(s, factor=2)
        peers = rep.replica_peers("101")
        host = s.mapping.host_of("101")
        assert host not in peers
        assert len({p.id for p in peers}) == len(peers) <= 2

    def test_replicate_all_covers_every_key(self, rng):
        s = build(rng)
        rep = ReplicationManager(s, factor=1)
        writes = rep.replicate_all()
        assert writes >= len(KEYS)
        assert set(rep.surviving_records()) == set(KEYS)

    def test_structural_nodes_not_replicated(self, rng):
        s = build(rng)
        rep = ReplicationManager(s, factor=1)
        rep.replicate_all()
        # structural labels (e.g. "0", "00") carry no data records.
        assert all(k in KEYS for k in rep.surviving_records())

    def test_dead_peer_store_dropped(self, rng):
        s = build(rng)
        rep = ReplicationManager(s, factor=1)
        rep.replicate_all()
        some_peer = next(iter(rep.stores))
        rep.on_peer_removed(some_peer)
        assert some_peer not in rep.stores

    def test_replicas_survive_peer_reposition(self, rng):
        """MLT rebalances by *renaming* peers (Ring.reposition); a replica
        held by a renamed peer must stay recoverable — stores are keyed by
        peer identity, not by the mutable ring id."""
        s = build(rng)
        rep = ReplicationManager(s, factor=1)
        rep.replicate_all()
        key = "101"
        (holder,) = rep.replica_peers(key)
        old_id = holder.id
        # Nudge the holder within its (old_id, successor) gap through the
        # mapping layer: order keeps, id changes, node intervals migrate —
        # exactly what MLT's split move does.
        s.mapping.reposition(holder, old_id + "0")
        assert holder.id != old_id
        assert key in rep.surviving_records()
        victim = s.mapping.host_of(key)
        report = crash_peer(s, victim.id)
        rep.on_peer_removed(report.peer_id)
        rr = repair(s, rep, lost_keys=report.lost_keys)
        assert key not in rr.unrecoverable_keys
        assert key in s.registered_keys()

    def test_single_peer_ring_has_no_replica_targets(self, rng):
        s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(10))
        s.build(rng, 1)
        s.register("1")
        rep = ReplicationManager(s, factor=3)
        assert rep.replica_peers("1") == []


class TestCrash:
    def test_crash_loses_hosted_nodes(self, rng):
        s = build(rng)
        victim = max(s.ring.peers(), key=lambda p: len(p.nodes))
        hosted = set(victim.nodes)
        report = crash_peer(s, victim.id)
        assert report.lost_nodes == hosted
        assert victim.id not in s.ring
        for lbl in hosted:
            assert s.tree.node(lbl) is None

    def test_crash_reports_lost_keys_only(self, rng):
        s = build(rng)
        victim = max(s.ring.peers(), key=lambda p: len(p.nodes))
        report = crash_peer(s, victim.id)
        assert report.lost_keys <= report.lost_nodes
        assert all(k in KEYS for k in report.lost_keys)

    def test_cannot_crash_last_peer(self, rng):
        s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(10))
        s.build(rng, 1)
        with pytest.raises(RuntimeError):
            crash_peer(s, s.ring.peers()[0].id)

    def test_crash_without_nodes_is_clean(self, rng):
        s = build(rng)
        victim = min(s.ring.peers(), key=lambda p: len(p.nodes))
        if victim.nodes:
            pytest.skip("every peer hosts nodes in this draw")
        crash_peer(s, victim.id)
        s.check_invariants()


class TestRepair:
    def test_repair_without_replication_keeps_survivors(self, rng):
        s = build(rng)
        victim = max(s.ring.peers(), key=lambda p: len(p.nodes))
        report = crash_peer(s, victim.id)
        rr = repair(s, None, lost_keys=report.lost_keys)
        s.check_invariants()
        assert rr.unrecoverable_keys == report.lost_keys
        assert s.registered_keys() == set(KEYS) - set(report.lost_keys)

    def test_repair_with_replication_recovers_everything(self, rng):
        s = build(rng)
        rep = ReplicationManager(s, factor=2)
        rep.replicate_all()
        victim = max(s.ring.peers(), key=lambda p: len(p.nodes))
        report = crash_peer(s, victim.id)
        rep.on_peer_removed(victim.id)
        rr = repair(s, rep, lost_keys=report.lost_keys)
        s.check_invariants()
        assert rr.unrecoverable_keys == frozenset()
        assert s.registered_keys() == set(KEYS)

    def test_repair_preserves_data_values(self, rng):
        s = build(rng, keys=[])
        s.register("1010", "server-A")
        s.register("1010", "server-B")
        rep = ReplicationManager(s, factor=2)
        rep.replicate_all()
        victim = s.mapping.host_of("1010")
        report = crash_peer(s, victim.id)
        repair(s, rep, lost_keys=report.lost_keys)
        assert s.tree.node("1010").data == {"server-A", "server-B"}

    def test_repair_counts_cost(self, rng):
        s = build(rng)
        rep = ReplicationManager(s, factor=1)
        rep.replicate_all()
        victim = max(s.ring.peers(), key=lambda p: len(p.nodes))
        report = crash_peer(s, victim.id)
        rr = repair(s, rep, lost_keys=report.lost_keys)
        # Rebuild re-registers every surviving + recovered key once per datum.
        assert rr.reinserted_keys == len(KEYS) - len(rr.unrecoverable_keys)

    def test_crash_of_the_roots_host_is_repairable(self, rng):
        """The root is the tree's routing apex: its host crashing detaches
        every top-level child, and repair must rebuild a rooted tree."""
        s = build(rng)
        rep = ReplicationManager(s, factor=2)
        rep.replicate_all()
        root_label = s.tree.root.label
        victim = s.mapping.host_of(root_label)
        report = crash_peer(s, victim.id)
        assert root_label in report.lost_nodes
        rep.on_peer_removed(victim.id)
        rr = repair(s, rep, lost_keys=report.lost_keys)
        s.check_invariants()
        assert rr.unrecoverable_keys == frozenset()
        assert s.tree.root is not None
        assert s.registered_keys() == set(KEYS)

    def test_losing_every_replica_reports_true_data_loss(self, rng):
        """When a key's host and all ``r`` of its replica peers crash before
        any re-replication, the loss must surface as unrecoverable — never
        be silently papered over by repair."""
        s = build(rng)
        rep = ReplicationManager(s, factor=1)
        rep.replicate_all()
        key = "101"
        holders = [s.mapping.host_of(key).id] + [p.id for p in rep.replica_peers(key)]
        lost: set[str] = set()
        for pid in holders:
            report = crash_peer(s, pid)
            rep.on_peer_removed(pid)
            lost |= report.lost_keys
        assert key in lost
        rr = repair(s, rep, lost_keys=frozenset(lost))
        s.check_invariants()
        assert key in rr.unrecoverable_keys
        assert key not in s.registered_keys()

    def test_repair_is_idempotent_on_double_invocation(self, rng):
        """A second repair pass over an already-consistent tree must change
        nothing: same keys, no recoveries, no losses."""
        s = build(rng)
        rep = ReplicationManager(s, factor=2)
        rep.replicate_all()
        victim = max(s.ring.peers(), key=lambda p: len(p.nodes))
        report = crash_peer(s, victim.id)
        rep.on_peer_removed(victim.id)
        first = repair(s, rep, lost_keys=report.lost_keys)
        keys_after_first = s.registered_keys()
        second = repair(s, rep)
        s.check_invariants()
        assert s.registered_keys() == keys_after_first
        assert second.recovered_from_replicas == 0
        assert second.unrecoverable_keys == frozenset()
        # The rebuild re-registers the same survivor set both times.
        assert second.reinserted_keys == first.reinserted_keys

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(st.text(alphabet="01", min_size=1, max_size=8),
                      min_size=1, max_size=20, unique=True),
        seed=st.integers(0, 5000),
        n_crashes=st.integers(1, 3),
    )
    def test_repair_after_multiple_crashes(self, keys, seed, n_crashes):
        rng = random.Random(seed)
        s = build(rng, n_peers=8, keys=keys)
        rep = ReplicationManager(s, factor=2)
        rep.replicate_all()
        lost: set[str] = set()
        for _ in range(min(n_crashes, len(s.ring) - 2)):
            victims = s.ring.ids()
            report = crash_peer(s, victims[rng.randrange(len(victims))])
            rep.on_peer_removed(report.peer_id)
            lost |= report.lost_keys
        rr = repair(s, rep, lost_keys=frozenset(lost))
        s.check_invariants()
        # With factor-2 replication, a key is lost only if its host AND
        # both replicas crashed before any re-replication.
        assert s.registered_keys() | rr.unrecoverable_keys == set(keys)
