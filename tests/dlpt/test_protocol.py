"""Asynchronous protocol engine: Algorithms 1–3 over simulated messages.

The strongest checks are the equivalence tests: after any quiesced sequence
of joins and insertions, the distributed state must match (a) the Section 3
mapping rule, (b) a consistent bidirectional ring, and (c) the *reference*
PGCP tree built from the same keys.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pgcp import PGCPTree
from repro.dlpt.protocol import ProtocolEngine
from repro.sim.network import UniformLatency


def engine_with_peers(peer_ids, latency_rng=None):
    eng = ProtocolEngine()
    if latency_rng is not None:
        eng.net.latency = UniformLatency(latency_rng, 0.5, 1.5)
    ids = list(peer_ids)
    eng.bootstrap_peer(ids[0])
    for pid in ids[1:]:
        eng.join_peer(pid)
        eng.run()
    return eng


class TestPeerJoin:
    def test_two_peer_ring(self):
        eng = engine_with_peers(["mmmm", "aaaa"])
        eng.check_ring()
        a, m = eng.peers["aaaa"], eng.peers["mmmm"]
        assert a.succ == "mmmm" and a.pred == "mmmm"
        assert m.succ == "aaaa" and m.pred == "aaaa"

    def test_many_peers_form_sorted_ring(self):
        rng = random.Random(3)
        ids = {"".join(rng.choice("abcdef") for _ in range(6)) for _ in range(20)}
        eng = engine_with_peers(sorted(ids, key=lambda _: rng.random()))
        eng.check_ring()

    def test_join_routed_through_tree(self):
        eng = engine_with_peers(["mmmm"])
        eng.insert_data("dgemm")
        eng.run()
        eng.join_peer("dzzz", via="dgemm")
        eng.run()
        eng.check_ring()
        eng.check_mapping()

    def test_join_splits_node_set(self):
        eng = engine_with_peers(["zzzz"])
        for k in ("aa", "mm", "zz"):
            eng.insert_data(k)
            eng.run()
        eng.join_peer("nnnn")
        eng.run()
        eng.check_mapping()
        # The newcomer owns the interval (zzzz, nnnn]: keys aa and mm.
        assert set(eng.peers["nnnn"].nodes) >= {"aa", "mm"}

    def test_duplicate_join_rejected(self):
        eng = engine_with_peers(["aaaa"])
        with pytest.raises(ValueError):
            eng.join_peer("aaaa")

    def test_joiner_above_pmax_wraps(self):
        eng = engine_with_peers(["bbbb", "cccc"])
        eng.join_peer("zzzz")  # above every existing peer
        eng.run()
        eng.check_ring()


class TestDataInsertion:
    def test_single_key_becomes_root(self):
        eng = engine_with_peers(["mmmm"])
        eng.insert_data("dgemm")
        eng.run()
        assert eng.node_labels() == {"dgemm"}
        eng.check_tree()

    def test_paper_figure1_shape(self):
        eng = engine_with_peers(["mmmm", "0a", "10b", "11c"])
        for k in ("01", "10101", "10111", "101111"):
            eng.insert_data(k)
            eng.run()
        eng.check_tree()
        eng.check_mapping()
        assert eng.node_labels() == {"", "01", "101", "10101", "10111", "101111"}

    def test_duplicate_key_accumulates_data(self):
        eng = engine_with_peers(["mmmm"])
        eng.insert_data("dgemm", datum="server1")
        eng.run()
        eng.insert_data("dgemm", datum="server2")
        eng.run()
        host = eng.locator["dgemm"]
        assert eng.peers[host].nodes["dgemm"].data == {"server1", "server2"}

    def test_concurrent_insertions_in_disjoint_subtrees(self):
        eng = engine_with_peers(["mmmm", "cccc", "ssss"])
        eng.insert_data("d1")
        eng.run()
        # Two batches issued without quiescing in between.
        eng.insert_data("daxpy")
        eng.insert_data("sgemm")
        eng.run()
        eng.check_tree()
        eng.check_mapping()

    def test_no_pending_messages_after_quiesce(self):
        eng = engine_with_peers(["mmmm", "aaaa"])
        for k in ("dgemm", "dgemv", "dgetrf"):
            eng.insert_data(k)
            eng.run()
        assert eng.pending_node_messages == {}
        assert eng.dead_node_messages == 0


class TestDiscovery:
    def test_found_with_data(self):
        eng = engine_with_peers(["mmmm", "aaaa"])
        eng.insert_data("dgemm", datum="s1")
        eng.run()
        eng.discover("dgemm")
        eng.run()
        (reply,) = eng.discovery_replies
        assert reply.found and reply.data == ("s1",)

    def test_not_found(self):
        eng = engine_with_peers(["mmmm"])
        eng.insert_data("dgemm")
        eng.run()
        eng.discover("zzz")
        eng.run()
        (reply,) = eng.discovery_replies
        assert not reply.found

    def test_discover_on_empty_tree_raises(self):
        eng = engine_with_peers(["mmmm"])
        with pytest.raises(RuntimeError):
            eng.discover("x")

    def test_hop_counts_reported(self):
        eng = engine_with_peers(["mmmm"])
        for k in ("01", "10101", "10111"):
            eng.insert_data(k)
            eng.run()
        eng.discover("10111", via="01")
        eng.run()
        (reply,) = eng.discovery_replies
        assert reply.found and reply.hops == 3  # 01 -> ε -> 101 -> 10111


class TestEquivalenceWithReference:
    """The distributed tree equals the sequential reference tree."""

    def run_and_compare(self, peer_ids, keys, latency_seed=None):
        latency_rng = random.Random(latency_seed) if latency_seed is not None else None
        eng = engine_with_peers(peer_ids, latency_rng=latency_rng)
        ref = PGCPTree()
        for k in keys:
            eng.insert_data(k)
            eng.run()
            ref.insert(k)
        eng.check_tree()
        eng.check_mapping()
        eng.check_ring()
        assert eng.node_labels() == ref.labels()
        ref_edges = {
            (n.parent.label, n.label)
            for n in ref.nodes()
            if n.parent is not None
        }
        assert eng.tree_edges() == ref_edges
        return eng

    def test_blas_subset(self):
        keys = ["dgemm", "dgemv", "daxpy", "sgemm", "S3L_fft", "Pdgesv", "dg"]
        self.run_and_compare(["mmmm", "aaaa", "ssss", "zzzz"], keys)

    def test_with_random_latency(self):
        keys = ["10", "1010", "1001", "11", "0", "101"]
        self.run_and_compare(["mmmm", "aaaa"], keys, latency_seed=9)

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(
            st.text(alphabet="01", min_size=1, max_size=8),
            min_size=1,
            max_size=12,
            unique=True,
        ),
        n_peers=st.integers(1, 6),
        seed=st.integers(0, 1000),
    )
    def test_any_key_sequence_matches_reference(self, keys, n_peers, seed):
        rng = random.Random(seed)
        ids = set()
        while len(ids) < n_peers:
            ids.add("".join(rng.choice("0123456789abcdef") for _ in range(6)))
        self.run_and_compare(sorted(ids, key=lambda _: rng.random()), keys,
                             latency_seed=seed)

    @settings(max_examples=15, deadline=None)
    @given(
        keys=st.lists(
            st.text(alphabet="01", min_size=1, max_size=6),
            min_size=1, max_size=8, unique=True,
        ),
        seed=st.integers(0, 1000),
    )
    def test_interleaved_joins_and_inserts(self, keys, seed):
        """Joins interleaved with insertions (quiescing between operations)
        still end at reference-equivalent state with a correct mapping."""
        rng = random.Random(seed)
        eng = engine_with_peers(["mmmmmm"])
        ref = PGCPTree()
        for i, k in enumerate(keys):
            eng.insert_data(k)
            eng.run()
            ref.insert(k)
            if i % 2 == 0:
                pid = "".join(rng.choice("0123456789abcdef") for _ in range(6))
                if pid not in eng.peers:
                    eng.join_peer(pid)
                    eng.run()
        eng.check_tree()
        eng.check_mapping()
        eng.check_ring()
        assert eng.node_labels() == ref.labels()
