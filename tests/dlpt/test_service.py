"""DiscoveryService facade: registration, search modes, multi-attribute."""

from __future__ import annotations

import pytest

from repro.core.queries import ExactQuery, MultiAttributeQuery, PrefixQuery, RangeQuery
from repro.dlpt.failures import ReplicationManager, crash_peer, repair
from repro.dlpt.service import DiscoveryService


@pytest.fixture
def service(grid_system):
    svc = DiscoveryService(grid_system)
    svc.register("dgemm", attributes={"lib": "blas", "prec": "double"})
    svc.register("dgemv", attributes={"lib": "blas", "prec": "double"})
    svc.register("sgemm", attributes={"lib": "blas", "prec": "single"})
    svc.register("S3L_fft", attributes={"lib": "s3l", "prec": "double"})
    return svc


class TestRegistration:
    def test_record_kept(self, service):
        rec = service.record("dgemm")
        assert rec.name == "dgemm" and rec.attributes["lib"] == "blas"

    def test_len_counts_services(self, service):
        assert len(service) == 4

    def test_attribute_keys_registered_in_tree(self, service):
        assert "lib=blas" in service.system.tree.keys()
        assert "prec=double" in service.system.tree.keys()

    def test_unregister_removes_everything(self, service):
        assert service.unregister("S3L_fft")
        assert service.record("S3L_fft") is None
        assert "S3L_fft" not in service.system.tree.keys()
        # Shared attribute keys survive for the other services…
        assert "prec=double" in service.system.tree.keys()
        # …but the s3l-only one is gone.
        assert "lib=s3l" not in service.system.tree.keys()
        service.system.check_invariants()

    def test_unregister_unknown_returns_false(self, service):
        assert not service.unregister("nope")


class TestDiscovery:
    def test_discover_routes(self, service, rng):
        out = service.discover("dgemm", rng=rng)
        assert out.satisfied

    def test_complete(self, service):
        assert service.complete("dgem") == ["dgemm", "dgemv"]

    def test_complete_excludes_attribute_keys(self, service):
        # 'lib=…' keys live in the tree but are not primary services.
        assert service.complete("lib") == []

    def test_range_search(self, service):
        assert service.range_search("dgemm", "sgemm") == ["dgemm", "dgemv", "sgemm"]

    def test_search_dispatch(self, service):
        assert service.search(ExactQuery("dgemm")) == ["dgemm"]
        assert service.search(PrefixQuery("S3L")) == ["S3L_fft"]
        assert service.search(RangeQuery("a", "e")) == ["dgemm", "dgemv"]

    def test_search_exact_miss(self, service):
        assert service.search(ExactQuery("qq")) == []


class TestMultiAttribute:
    def test_conjunction(self, service):
        q = MultiAttributeQuery(
            clauses={"lib": ExactQuery("blas"), "prec": ExactQuery("double")}
        )
        assert service.multi_attribute_search(q) == ["dgemm", "dgemv"]

    def test_prefix_clause(self, service):
        q = MultiAttributeQuery(clauses={"lib": PrefixQuery("s")})
        assert service.multi_attribute_search(q) == ["S3L_fft"]

    def test_prefix_clause_shared_value(self, service):
        q = MultiAttributeQuery(clauses={"lib": PrefixQuery("b")})
        assert service.multi_attribute_search(q) == ["dgemm", "dgemv", "sgemm"]

    def test_range_clause(self, service):
        q = MultiAttributeQuery(clauses={"prec": RangeQuery("double", "single")})
        assert set(service.multi_attribute_search(q)) == {
            "dgemm", "dgemv", "sgemm", "S3L_fft",
        }

    def test_empty_intersection_short_circuits(self, service):
        q = MultiAttributeQuery(
            clauses={"lib": ExactQuery("s3l"), "prec": ExactQuery("single")}
        )
        assert service.multi_attribute_search(q) == []


class TestSetQueriesAfterChurn:
    """The set-returning searches on trees reshaped by peer/key churn.

    The PGCP tree depends only on the registered key set, so peer churn
    must leave every set query unchanged, while registration churn must be
    reflected exactly — both directions are pinned here.
    """

    def _snapshot(self, service):
        return (
            service.complete("dgem"),
            service.complete("S3L"),
            service.range_search("d", "t"),
            service.multi_attribute_search(
                MultiAttributeQuery(clauses={"lib": ExactQuery("blas")})
            ),
        )

    def test_peer_churn_leaves_set_queries_invariant(self, service, rng):
        before = self._snapshot(service)
        system = service.system
        for pid in ("churn1", "churn2", "churn3"):
            system.add_peer(rng, peer_id=pid, capacity=5)
        for _ in range(4):
            system.remove_peer(system.ring.id_at(rng.randrange(len(system.ring))))
        system.check_invariants()
        assert self._snapshot(service) == before

    def test_registration_churn_is_reflected_exactly(self, service, rng):
        service.register("dgetrf", attributes={"lib": "blas", "prec": "double"})
        service.register("S3L_sort", attributes={"lib": "s3l"})
        service.unregister("dgemv")
        system = service.system
        for _ in range(2):
            system.remove_peer(system.ring.id_at(rng.randrange(len(system.ring))))
        assert service.complete("dge") == ["dgemm", "dgetrf"]
        assert service.range_search("S", "T") == ["S3L_fft", "S3L_sort"]
        q = MultiAttributeQuery(
            clauses={"lib": ExactQuery("blas"), "prec": ExactQuery("double")}
        )
        assert service.multi_attribute_search(q) == ["dgemm", "dgetrf"]
        q = MultiAttributeQuery(clauses={"lib": PrefixQuery("s")})
        assert service.multi_attribute_search(q) == ["S3L_fft", "S3L_sort"]
        system.check_invariants()


class TestSetQueriesAfterCrash:
    """Set queries on crash-damaged and repaired trees.

    A fail-stop crash removes the victim's filled nodes; completion, range
    and multi-attribute answers must shrink to exactly the surviving keys
    (never error, never resurrect), and come back after repair.
    """

    def _crashed(self, service, rng, *, factor=1):
        system = service.system
        replication = ReplicationManager(system, factor=factor)
        replication.replicate_all()
        victim = system.mapping.host_of("dgemm").id
        report = crash_peer(system, victim)
        replication.on_peer_removed(victim)
        return replication, report

    def _snapshot(self, service):
        return (
            service.complete("dgem"),
            service.range_search("a", "z"),
            service.multi_attribute_search(
                MultiAttributeQuery(clauses={"prec": ExactQuery("double")})
            ),
        )

    def test_damaged_tree_answers_with_survivors_only(self, service, rng):
        before_multi = self._snapshot(service)[2]
        _, report = self._crashed(service, rng)
        lost_names = {k for k in report.lost_keys if service.record(k)}
        assert lost_names  # the victim really hosted primary keys
        # Key-band searches answer from the tree's surviving key nodes…
        surviving = set(service.system.tree.keys())
        assert not (set(service.complete("dgem")) & lost_names)
        assert not (set(service.range_search("a", "z")) & lost_names)
        assert set(service.complete("dgem")) <= surviving
        assert set(service.range_search("a", "z")) <= surviving
        # …while conjunctions answer from the attribute bands, which are
        # independent nodes: they may still name a crashed primary (the
        # record outlives the key node) but never invent new answers.
        after_multi = self._snapshot(service)[2]
        assert set(after_multi) <= set(before_multi)

    def test_repair_restores_every_search_mode(self, service, rng):
        before = self._snapshot(service)
        assert before[0]  # the fixture must actually cover the crash band
        replication, report = self._crashed(service, rng)
        repair(service.system, replication, lost_keys=report.lost_keys)
        service.system.check_invariants()
        assert self._snapshot(service) == before

    def test_attribute_band_loss_narrows_conjunctions(self, service, rng):
        """Losing an ``attr=value`` band node drops that clause's matches
        even when the primary names survive — the conjunction must reflect
        the tree as it is, not the records as they were."""
        system = service.system
        replication = ReplicationManager(system, factor=1)
        replication.replicate_all()
        victim = system.mapping.host_of("lib=blas").id
        report = crash_peer(system, victim)
        replication.on_peer_removed(victim)
        q = MultiAttributeQuery(clauses={"lib": ExactQuery("blas")})
        if "lib=blas" in report.lost_keys:
            assert service.multi_attribute_search(q) == []
        else:
            assert service.multi_attribute_search(q) == ["dgemm", "dgemv", "sgemm"]


class TestCompletionCost:
    def test_cost_counts_climb_plus_subtree(self, service):
        entry = next(iter(service.system.tree.labels()))
        cost = service.completion_route_cost("dgem", entry)
        assert cost >= 0

    def test_cost_for_missing_band(self, service):
        entry = "dgemm"
        cost = service.completion_route_cost("zzz", entry)
        assert cost >= 0
