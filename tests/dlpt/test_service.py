"""DiscoveryService facade: registration, search modes, multi-attribute."""

from __future__ import annotations

import pytest

from repro.core.queries import ExactQuery, MultiAttributeQuery, PrefixQuery, RangeQuery
from repro.dlpt.service import DiscoveryService


@pytest.fixture
def service(grid_system):
    svc = DiscoveryService(grid_system)
    svc.register("dgemm", attributes={"lib": "blas", "prec": "double"})
    svc.register("dgemv", attributes={"lib": "blas", "prec": "double"})
    svc.register("sgemm", attributes={"lib": "blas", "prec": "single"})
    svc.register("S3L_fft", attributes={"lib": "s3l", "prec": "double"})
    return svc


class TestRegistration:
    def test_record_kept(self, service):
        rec = service.record("dgemm")
        assert rec.name == "dgemm" and rec.attributes["lib"] == "blas"

    def test_len_counts_services(self, service):
        assert len(service) == 4

    def test_attribute_keys_registered_in_tree(self, service):
        assert "lib=blas" in service.system.tree.keys()
        assert "prec=double" in service.system.tree.keys()

    def test_unregister_removes_everything(self, service):
        assert service.unregister("S3L_fft")
        assert service.record("S3L_fft") is None
        assert "S3L_fft" not in service.system.tree.keys()
        # Shared attribute keys survive for the other services…
        assert "prec=double" in service.system.tree.keys()
        # …but the s3l-only one is gone.
        assert "lib=s3l" not in service.system.tree.keys()
        service.system.check_invariants()

    def test_unregister_unknown_returns_false(self, service):
        assert not service.unregister("nope")


class TestDiscovery:
    def test_discover_routes(self, service, rng):
        out = service.discover("dgemm", rng=rng)
        assert out.satisfied

    def test_complete(self, service):
        assert service.complete("dgem") == ["dgemm", "dgemv"]

    def test_complete_excludes_attribute_keys(self, service):
        # 'lib=…' keys live in the tree but are not primary services.
        assert service.complete("lib") == []

    def test_range_search(self, service):
        assert service.range_search("dgemm", "sgemm") == ["dgemm", "dgemv", "sgemm"]

    def test_search_dispatch(self, service):
        assert service.search(ExactQuery("dgemm")) == ["dgemm"]
        assert service.search(PrefixQuery("S3L")) == ["S3L_fft"]
        assert service.search(RangeQuery("a", "e")) == ["dgemm", "dgemv"]

    def test_search_exact_miss(self, service):
        assert service.search(ExactQuery("qq")) == []


class TestMultiAttribute:
    def test_conjunction(self, service):
        q = MultiAttributeQuery(
            clauses={"lib": ExactQuery("blas"), "prec": ExactQuery("double")}
        )
        assert service.multi_attribute_search(q) == ["dgemm", "dgemv"]

    def test_prefix_clause(self, service):
        q = MultiAttributeQuery(clauses={"lib": PrefixQuery("s")})
        assert service.multi_attribute_search(q) == ["S3L_fft"]

    def test_prefix_clause_shared_value(self, service):
        q = MultiAttributeQuery(clauses={"lib": PrefixQuery("b")})
        assert service.multi_attribute_search(q) == ["dgemm", "dgemv", "sgemm"]

    def test_range_clause(self, service):
        q = MultiAttributeQuery(clauses={"prec": RangeQuery("double", "single")})
        assert set(service.multi_attribute_search(q)) == {
            "dgemm", "dgemv", "sgemm", "S3L_fft",
        }

    def test_empty_intersection_short_circuits(self, service):
        q = MultiAttributeQuery(
            clauses={"lib": ExactQuery("s3l"), "prec": ExactQuery("single")}
        )
        assert service.multi_attribute_search(q) == []


class TestCompletionCost:
    def test_cost_counts_climb_plus_subtree(self, service):
        entry = next(iter(service.system.tree.labels()))
        cost = service.completion_route_cost("dgem", entry)
        assert cost >= 0

    def test_cost_for_missing_band(self, service):
        entry = "dgemm"
        cost = service.completion_route_cost("zzz", entry)
        assert cost >= 0
