"""Lexicographic mapping: the Section 3 hosting rule under churn and MLT."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import BINARY
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity

binary_keys = st.text(alphabet="01", min_size=1, max_size=10)


def make_system(rng, n_peers=6):
    s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(1000))
    s.build(rng, n_peers)
    return s


class TestHostingRule:
    def test_node_hosted_by_ceiling_peer(self, rng):
        s = make_system(rng)
        s.register("0101")
        host = s.mapping.host_of("0101")
        assert host is s.ring.successor_of_key("0101")

    def test_wrap_to_min_peer(self, rng):
        s = make_system(rng)
        high = "1" * 30  # above every peer id (ids have length 24)
        s.register(high)
        assert s.mapping.host_of(high) is s.ring.min_peer()

    def test_structural_nodes_are_mapped_too(self, rng):
        s = make_system(rng)
        s.register("1010")
        s.register("1001")  # creates structural "10"
        assert s.mapping.host_of("10") is s.ring.successor_of_key("10")

    def test_mapping_invariant_checker(self, rng):
        s = make_system(rng)
        for k in ("0", "10", "110", "111"):
            s.register(k)
        s.mapping.check_invariants()


class TestJoinMigration:
    def test_join_pulls_interval_from_successor(self, rng):
        s = make_system(rng, n_peers=2)
        for k in ("000", "010", "101", "111"):
            s.register(k)
        new = s.add_peer(rng)
        s.check_invariants()
        # Every node the newcomer hosts is in its interval.
        pred = s.ring.predecessor(new.id)
        for lbl in new.nodes:
            from repro.core.keyspace import in_interval_open_closed

            assert in_interval_open_closed(lbl, pred.id, new.id)

    def test_leave_pushes_nodes_to_successor(self, rng):
        s = make_system(rng, n_peers=3)
        for k in ("000", "010", "101", "111"):
            s.register(k)
        victim = s.ring.peers()[1]
        moved = set(victim.nodes)
        succ = s.ring.successor(victim.id)
        s.remove_peer(victim.id)
        s.check_invariants()
        assert moved <= succ.nodes

    def test_migration_counter_advances(self, rng):
        s = make_system(rng, n_peers=2)
        for k in ("000", "111"):
            s.register(k)
        before = s.mapping.migrations
        s.add_peer(rng)
        s.remove_peer(s.ring.peers()[0].id)
        assert s.mapping.migrations >= before

    def test_cannot_drain_last_peer(self, rng):
        s = make_system(rng, n_peers=1)
        s.register("01")
        with pytest.raises(RuntimeError):
            s.remove_peer(s.ring.peers()[0].id)


class TestReposition:
    def test_move_towards_successor_absorbs(self, rng):
        s = make_system(rng, n_peers=3)
        for k in ("000", "001", "010", "011", "100", "101", "110", "111"):
            s.register(k)
        peers = s.ring.peers()
        p = peers[0]
        succ = s.ring.successor(p.id)
        if succ.nodes:
            target = max(lbl for lbl in succ.nodes) if max(succ.nodes) < succ.id else None
            candidates = sorted(lbl for lbl in succ.nodes if lbl < succ.id and lbl > p.id)
            if candidates:
                moved = s.mapping.reposition(p, candidates[0])
                assert moved >= 1
                s.check_invariants()

    def test_noop_reposition(self, rng):
        s = make_system(rng, n_peers=3)
        p = s.ring.peers()[0]
        assert s.mapping.reposition(p, p.id) == 0


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.lists(binary_keys, min_size=1, max_size=25),
        seed=st.integers(0, 2**16),
        churn_ops=st.lists(st.sampled_from(["join", "leave", "insert"]), max_size=15),
    )
    def test_invariant_under_interleaved_churn_and_growth(self, keys, seed, churn_ops):
        rng = random.Random(seed)
        s = make_system(rng, n_peers=3)
        pending = list(keys)
        for op in churn_ops:
            if op == "join":
                s.add_peer(rng)
            elif op == "leave" and len(s.ring) > 2:
                victims = s.ring.ids()
                s.remove_peer(victims[rng.randrange(len(victims))])
            elif op == "insert" and pending:
                s.register(pending.pop())
            s.check_invariants()
        for k in pending:
            s.register(k)
        s.check_invariants()
