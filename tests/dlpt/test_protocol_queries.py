"""Engine set queries: the scan token vs the macro model vs the oracle.

The message-level engine serves :class:`SetQueryRequest` scan tokens; the
macro model (:meth:`DLPTSystem.search`) serves the same queries with
global knowledge.  After any quiesced build the two must return identical
result sets — and both must equal the brute-force filter over the
inserted keys.  The engine's hop counter (one message forward per hop)
must equal the macro model's logical climb + descent + scan accounting.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from strategies import keys_st, prefix_queries, range_queries

from repro.core.queries import PrefixQuery
from repro.dlpt.protocol import ProtocolEngine
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity

from test_protocol import engine_with_peers


def issue(eng: ProtocolEngine, kind: str, lo: str, hi: str = "", via=None):
    mark = len(eng.query_replies)
    eng.search_query(kind, lo, hi, via=via)
    eng.run()
    replies = eng.query_replies[mark:]
    del eng.query_replies[mark:]
    assert len(replies) == 1, f"{len(replies)} replies for one query"
    return replies[0]


def build_engine(keys):
    eng = engine_with_peers(["dddd", "hhhh", "pppp", "tttt"])
    for key in keys:
        eng.insert_data(key)
        eng.run()
    return eng


class TestEngineAnswers:
    def test_prefix_completion(self):
        eng = build_engine(["dgemm", "dgemv", "dgetrf", "sgemm"])
        reply = issue(eng, "prefix", "dge")
        assert list(reply.keys) == ["dgemm", "dgemv", "dgetrf"]

    def test_range(self):
        eng = build_engine(["dgemm", "dgemv", "dgetrf", "sgemm"])
        reply = issue(eng, "range", "dgemv", "sgemm")
        assert list(reply.keys) == ["dgemv", "dgetrf", "sgemm"]

    def test_empty_prefix_returns_everything(self):
        keys = ["dgemm", "dgemv", "sgemm"]
        eng = build_engine(keys)
        assert list(issue(eng, "prefix", "").keys) == sorted(keys)

    def test_foreign_prefix_returns_nothing(self):
        eng = build_engine(["dgemm", "dgemv"])
        reply = issue(eng, "prefix", "zz")
        assert reply.keys == ()

    def test_exact_probe_as_degenerate_range(self):
        eng = build_engine(["dgemm", "dgemv"])
        assert list(issue(eng, "range", "dgemm", "dgemm").keys) == ["dgemm"]
        assert issue(eng, "range", "dgemx", "dgemx").keys == ()

    def test_entry_node_does_not_change_answer(self):
        eng = build_engine(["dgemm", "dgemv", "dgetrf", "sgemm", "ssyrk"])
        answers = {
            issue(eng, "prefix", "dge", via=label).keys
            for label in list(eng.locator)
        }
        assert answers == {("dgemm", "dgemv", "dgetrf")}


class TestEngineValidation:
    def test_unknown_kind_rejected(self):
        eng = build_engine(["dgemm"])
        with pytest.raises(ValueError, match="kind"):
            eng.search_query("glob", "d*")

    def test_empty_range_rejected(self):
        eng = build_engine(["dgemm"])
        with pytest.raises(ValueError, match="empty range"):
            eng.search_query("range", "z", "a")

    def test_empty_tree_raises(self):
        eng = engine_with_peers(["dddd", "pppp"])
        with pytest.raises(RuntimeError, match="empty"):
            eng.search_query("prefix", "d")


class TestEngineVsMacroVsOracle:
    """The differential triangle on a common key set.

    Node labels are tree-structural, so the engine's locator and the
    macro tree hold the same labels; issuing the same query from the same
    entry node must yield identical result sets (both equal to the
    brute-force oracle) and identical hop counts — one message forward in
    the engine per logical hop in the macro accounting.
    """

    def _systems(self, keys, seed=0):
        eng = build_engine(keys)
        macro = DLPTSystem(capacity_model=FixedCapacity(10**9))
        macro.build(random.Random(seed), 6)
        macro.register_batch(keys)
        assert set(eng.locator) == {n.label for n in macro.tree.nodes()}
        return eng, macro

    def _compare(self, eng, macro, query):
        kind = "prefix" if isinstance(query, PrefixQuery) else "range"
        lo = query.prefix if kind == "prefix" else query.lo
        hi = "" if kind == "prefix" else query.hi
        oracle = sorted(
            k for k in eng.locator if self._filled(eng, k) and query.matches(k)
        )
        entries = sorted(eng.locator)
        picked = entries[:: max(1, len(entries) // 5)][:5]
        for entry in picked:
            out = macro.search(query, entry_label=entry)
            reply = issue(eng, kind, lo, hi, via=entry)
            assert list(reply.keys) == list(out.results) == oracle
            assert reply.hops == out.logical_hops

    @staticmethod
    def _filled(eng, label):
        host = eng.locator[label]
        return bool(eng.peers[host].nodes[label].data)

    @settings(max_examples=25, deadline=None)
    @given(data=keys_st.flatmap(
        lambda keys: prefix_queries(keys).map(lambda q: (keys, q))
    ))
    def test_prefix_triangle(self, data):
        keys, query = data
        eng, macro = self._systems(keys)
        self._compare(eng, macro, query)

    @settings(max_examples=25, deadline=None)
    @given(data=keys_st.flatmap(
        lambda keys: range_queries(keys).map(lambda q: (keys, q))
    ))
    def test_range_triangle(self, data):
        keys, query = data
        eng, macro = self._systems(keys)
        self._compare(eng, macro, query)
