"""Graceful leave at the message level (inverse of Algorithm 2's split)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlpt.protocol import ProtocolEngine


def engine_with(peer_ids, keys=()):
    eng = ProtocolEngine()
    ids = list(peer_ids)
    eng.bootstrap_peer(ids[0])
    for pid in ids[1:]:
        eng.join_peer(pid)
        eng.run()
    for k in keys:
        eng.insert_data(k)
        eng.run()
    return eng


class TestLeave:
    def test_nodes_move_to_successor(self):
        eng = engine_with(["cccc", "mmmm", "zzzz"], keys=["aa", "ll", "yy"])
        leaver = "mmmm"
        hosted = set(eng.peers[leaver].nodes)
        eng.leave_peer(leaver)
        eng.run()
        eng.check_ring()
        eng.check_mapping()
        assert leaver not in eng.peers
        assert hosted <= set(eng.peers["zzzz"].nodes)

    def test_ring_pointers_heal(self):
        eng = engine_with(["cccc", "mmmm", "zzzz"])
        eng.leave_peer("mmmm")
        eng.run()
        assert eng.peers["cccc"].succ == "zzzz"
        assert eng.peers["zzzz"].pred == "cccc"

    def test_two_peer_ring_collapses_to_one(self):
        eng = engine_with(["cccc", "mmmm"], keys=["aa"])
        eng.leave_peer("cccc")
        eng.run()
        survivor = eng.peers["mmmm"]
        assert survivor.pred == "mmmm" and survivor.succ == "mmmm"
        assert "aa" in survivor.nodes

    def test_single_peer_cannot_leave(self):
        eng = engine_with(["cccc"])
        with pytest.raises(RuntimeError):
            eng.leave_peer("cccc")

    def test_unknown_peer_cannot_leave(self):
        eng = engine_with(["cccc", "mmmm"])
        with pytest.raises(KeyError):
            eng.leave_peer("ghost")

    def test_discovery_still_works_after_leave(self):
        eng = engine_with(["cccc", "mmmm", "zzzz"],
                          keys=["dgemm", "dgemv", "S3L_fft"])
        eng.leave_peer("mmmm")
        eng.run()
        eng.discover("dgemm")
        eng.run()
        assert eng.discovery_replies[-1].found

    @settings(max_examples=20, deadline=None)
    @given(
        keys=st.lists(st.text(alphabet="01", min_size=1, max_size=6),
                      min_size=1, max_size=10, unique=True),
        seed=st.integers(0, 1000),
    )
    def test_join_leave_churn_preserves_tree(self, keys, seed):
        """Interleaved joins and leaves never lose a node or break the
        mapping (quiescing between membership events)."""
        rng = random.Random(seed)
        eng = engine_with(["mmmmmm"], keys=keys)
        expected = eng.node_labels()
        alive = ["mmmmmm"]
        for _ in range(6):
            if len(alive) > 1 and rng.random() < 0.4:
                victim = alive.pop(rng.randrange(len(alive)))
                eng.leave_peer(victim)
            else:
                pid = "".join(rng.choice("0123456789abcdef") for _ in range(6))
                if pid not in eng.peers:
                    eng.join_peer(pid)
                    alive.append(pid)
            eng.run()
            eng.check_ring()
            eng.check_mapping()
            eng.check_tree()
            assert eng.node_labels() == expected
