"""Discovery equivalence: indexed fast path ≡ the seed's per-request walk.

The fast-path PR (label-indexed :class:`repro.dlpt.routing.DiscoveryRouter`
plus the batched :meth:`DLPTSystem.discover_batch`) must be a pure
performance change: on any tree, any workload and any damage state, every
request's outcome (satisfied / found / logical and physical hops / drop
point) and every peer's capacity accounting must be identical to the
frozen seed implementation in :mod:`repro.perf.reference_routing`.  These
property tests drive twin systems — one served by the live fast path, one
by the seed walk — through identical operation and request sequences.

All inputs come from hypothesis strategies (the shared ones in
``tests/strategies.py``): trees, churn scripts *and* the request mixes,
so shrinking works end to end — a failing example minimises the requests
too, not just the tree they run against.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import strategies
from strategies import ALPHABET, keys_st, peer_ids_st

from repro.dlpt.failures import ReplicationManager, crash_peer, repair
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity
from repro.perf.reference_routing import seed_discover
from repro.workloads.dynamics import AdversarialPrefixStacking
from repro.workloads.requests import HotSpotRequests, UniformRequests, ZipfRequests


def _build_twins(peer_ids, keys, capacity):
    """Two identically-constructed systems (same peers, same tree)."""
    twins = []
    for _ in range(2):
        system = DLPTSystem(
            alphabet=ALPHABET, capacity_model=FixedCapacity(capacity)
        )
        rng = random.Random(0)
        for pid in peer_ids:
            system.add_peer(rng, peer_id=pid)
        for key in keys:
            system.register(key)
        twins.append(system)
    return twins


def _outcome_tuple(outcome):
    return (
        outcome.satisfied,
        outcome.found,
        outcome.logical_hops,
        outcome.physical_hops,
        outcome.dropped_at,
    )


def _peer_accounting(system):
    return {
        p.id: (p.used, p.total_processed, p.total_rejected, dict(p.node_load))
        for p in system.ring
    }


def _assert_equal_requests(fast, seed, requests, accounting="destination"):
    """Issue ``requests`` (key, entry) on both twins; compare everything."""
    for key, entry in requests:
        got = _outcome_tuple(
            fast.discover(key, entry_label=entry, accounting=accounting)
        )
        want = _outcome_tuple(
            seed_discover(seed, key, entry_label=entry, accounting=accounting)
        )
        assert got == want, (key, entry, got, want)
    assert _peer_accounting(fast) == _peer_accounting(seed)


class TestRandomTrees:
    @settings(max_examples=60, deadline=None)
    @given(peer_ids=peer_ids_st, keys=keys_st, data=st.data())
    def test_uniform_requests_equivalent(self, peer_ids, keys, data):
        fast, seed_sys = _build_twins(peer_ids, keys, capacity=3)
        requests = data.draw(
            strategies.request_mixes(keys, fast.tree.labels(), n=60)
        )
        _assert_equal_requests(fast, seed_sys, requests)

    @settings(max_examples=30, deadline=None)
    @given(peer_ids=peer_ids_st, keys=keys_st, data=st.data())
    def test_transit_accounting_equivalent(self, peer_ids, keys, data):
        fast, seed_sys = _build_twins(peer_ids, keys, capacity=4)
        requests = data.draw(
            strategies.request_mixes(keys, fast.tree.labels(), n=40)
        )
        _assert_equal_requests(fast, seed_sys, requests, accounting="transit")


class TestWorkloadGenerators:
    @pytest.mark.parametrize(
        "make_generator",
        [
            lambda: UniformRequests(),
            lambda: ZipfRequests(s=1.2, seed_rng=random.Random(7)),
            lambda: HotSpotRequests("a", intensity=0.9),
            lambda: AdversarialPrefixStacking("ab", s=1.1),
        ],
        ids=["uniform", "zipf", "hotspot", "adversarial"],
    )
    @settings(max_examples=25, deadline=None)
    @given(
        peer_ids=peer_ids_st,
        keys=keys_st,
        seed=st.integers(0, 2**16),
        data=st.data(),
    )
    def test_generator_driven_equivalent(self, make_generator, peer_ids, keys, seed, data):
        fast, seed_sys = _build_twins(peer_ids, keys, capacity=3)
        generator = make_generator()
        # The generator's own draws stay on its random.Random API (that
        # sampling behaviour is part of what runs in production); entry
        # nodes come from a strategy, so they shrink with the example.
        rng = random.Random(seed)
        available = sorted(set(keys))
        entries = data.draw(strategies.entry_labels(fast.tree.labels(), n=50))
        requests = [
            (generator.sample(rng, available), entry) for entry in entries
        ]
        _assert_equal_requests(fast, seed_sys, requests)


class TestBatchMatchesPerRequest:
    @settings(max_examples=40, deadline=None)
    @given(peer_ids=peer_ids_st, keys=keys_st, data=st.data())
    def test_batch_counters_match_seed_loop(self, peer_ids, keys, data):
        """discover_batch (the runner's path) aggregates exactly what the
        seed per-request loop would: counters, hop sums, histogram, and
        the peers' capacity state."""
        fast, seed_sys = _build_twins(peer_ids, keys, capacity=2)
        requests = data.draw(
            strategies.request_mixes(keys, fast.tree.labels(), n=80)
        )
        batch = fast.discover_batch(requests)
        satisfied = dropped = not_found = logical = physical = 0
        hist: dict[int, int] = {}
        for key, entry in requests:
            outcome = seed_discover(seed_sys, key, entry_label=entry)
            if outcome.satisfied:
                satisfied += 1
                logical += outcome.logical_hops
                physical += outcome.physical_hops
                hist[outcome.logical_hops] = hist.get(outcome.logical_hops, 0) + 1
            elif outcome.dropped:
                dropped += 1
            else:
                not_found += 1
        assert batch.issued == len(requests)
        assert (batch.satisfied, batch.dropped, batch.not_found) == (
            satisfied, dropped, not_found,
        )
        assert (batch.logical_hops, batch.physical_hops) == (logical, physical)
        assert batch.hop_histogram == hist
        assert _peer_accounting(fast) == _peer_accounting(seed_sys)


class TestAfterChurn:
    @settings(max_examples=40, deadline=None)
    @given(
        peer_ids=peer_ids_st,
        keys=keys_st,
        churn=st.lists(
            st.one_of(
                st.tuples(st.just("join"), st.text(alphabet="abc", min_size=2, max_size=6)),
                st.tuples(st.just("leave"), st.integers(0, 10**6)),
                st.tuples(st.just("register"), st.text(alphabet="abc", min_size=1, max_size=8)),
                st.tuples(st.just("unregister"), st.integers(0, 10**6)),
            ),
            max_size=15,
        ),
        data=st.data(),
    )
    def test_post_churn_equivalent(self, peer_ids, keys, churn, data):
        fast, seed_sys = _build_twins(peer_ids, keys, capacity=3)
        live_keys = sorted(set(keys))
        for op in churn:
            for system in (fast, seed_sys):
                ring = system.ring
                if op[0] == "join" and op[1] not in ring:
                    system.add_peer(random.Random(1), peer_id=op[1], capacity=3)
                elif op[0] == "leave" and len(ring) > 1:
                    system.remove_peer(ring.id_at(op[1] % len(ring)))
                elif op[0] == "register":
                    system.register(op[1])
                elif op[0] == "unregister" and live_keys:
                    system.unregister(live_keys[op[1] % len(live_keys)])
            if op[0] == "register" and op[1] not in live_keys:
                live_keys = sorted(set(live_keys) | {op[1]})
            elif op[0] == "unregister" and live_keys:
                live_keys.pop(op[1] % len(live_keys))
        if not fast.tree.labels():
            return  # churn emptied the tree: nothing to route
        pool = live_keys or sorted(fast.tree.labels())
        requests = data.draw(
            strategies.request_mixes(pool, fast.tree.labels(), n=50)
        )
        _assert_equal_requests(fast, seed_sys, requests)


class TestAfterFaults:
    @settings(max_examples=40, deadline=None)
    @given(
        peer_ids=strategies.peer_ids_min3_st,
        keys=keys_st,
        crash_draws=st.lists(st.integers(0, 10**6), min_size=1, max_size=3),
        do_repair=st.booleans(),
        data=st.data(),
    )
    def test_post_crash_equivalent(self, peer_ids, keys, crash_draws, do_repair, data):
        """Crash-damaged forests (and repaired trees) route identically —
        including entries inside detached fragments, which exercise the
        fast path's walking fallback."""
        fast, seed_sys = _build_twins(peer_ids, keys, capacity=3)
        replications = [ReplicationManager(s, factor=1) for s in (fast, seed_sys)]
        for r in replications:
            r.replicate_all()
        lost: set[str] = set()
        for draw in crash_draws:
            if len(fast.ring) <= 1:
                break
            victim = fast.ring.id_at(draw % len(fast.ring))
            for system, replication in zip((fast, seed_sys), replications):
                report = crash_peer(system, victim)
                replication.on_peer_removed(victim)
            lost |= report.lost_keys
        if do_repair:
            for system, replication in zip((fast, seed_sys), replications):
                repair(system, replication, lost_keys=frozenset(lost))
        labels = sorted(fast.tree.labels())
        assert labels == sorted(seed_sys.tree.labels())
        if not labels:
            return
        pool = sorted(fast.tree.keys()) or labels
        requests = data.draw(
            strategies.request_mixes(pool, fast.tree.labels(), n=50)
        )
        _assert_equal_requests(fast, seed_sys, requests)
