"""Set queries vs a brute-force oracle — the differential proof.

Every result set :meth:`DLPTSystem.search` returns is compared against
the trivially-correct answer (filter the registered key set with the
query's own ``matches`` predicate): on hypothesis-random trees, on a
1000+-key corpus, after peer churn, after crashes that shatter the tree
into a forest, and after repair.  Routed scans, walking-resolver
fallbacks and the subtree memo layer must all be invisible in the
results — only the hop counters may differ between code paths.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from strategies import (
    ALPHABET,
    keys_st,
    multi_attribute_queries,
    peer_ids_min3_st,
    set_queries,
)

from repro.core.queries import (
    ExactQuery,
    MultiAttributeQuery,
    PrefixQuery,
    RangeQuery,
    attribute_key,
)
from repro.dlpt.failures import ReplicationManager, crash_peer, repair
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity
from repro.workloads.keys import grid_service_corpus


def oracle(system: DLPTSystem, query) -> list[str]:
    """The ground truth: the query predicate over the registered keys."""
    if isinstance(query, MultiAttributeQuery):
        per_attr = query.attribute_queries()
        keys = system.registered_keys()
        return sorted(
            set.intersection(*(set(k for k in keys if q.matches(k)) for q in per_attr.values()))
        )
    return sorted(k for k in system.registered_keys() if query.matches(k))


def assert_oracle_equal(system: DLPTSystem, query, rng=None) -> None:
    out = system.search(query, rng=rng)
    assert list(out.results) == oracle(system, query), query.describe()


#: A panel of fixed probes run against every reshaped tree; spans chosen
#: to straddle subtree (and, post-crash, fragment) boundaries.
def probe_panel(keys) -> list:
    keys = sorted(set(keys))
    n = len(keys)
    panel = [
        PrefixQuery(""),  # whole tree
        PrefixQuery(keys[0][:1]),
        PrefixQuery(keys[n // 2][: max(1, len(keys[n // 2]) // 2)]),
        PrefixQuery("zz"),  # outside the corpus alphabet band
        RangeQuery(keys[0], keys[-1]),
        RangeQuery(keys[n // 4], keys[min(n - 1, n // 4 + n // 2)]),
        ExactQuery(keys[n // 3]),
        ExactQuery(keys[n // 3] + "xx"),  # miss below a leaf
    ]
    return panel


class TestHypothesisRandomTrees:
    @settings(max_examples=60, deadline=None)
    @given(data=keys_st.flatmap(
        lambda keys: peer_ids_min3_st.flatmap(
            lambda pids: set_queries(keys).map(lambda q: (keys, pids, q))
        )
    ))
    def test_search_matches_oracle(self, data):
        keys, peer_ids, query = data
        system = DLPTSystem(alphabet=ALPHABET, capacity_model=FixedCapacity(10**9))
        system.add_peers(random.Random(1), peer_ids=peer_ids)
        system.register_batch(keys)
        assert_oracle_equal(system, query, rng=random.Random(7))

    @settings(max_examples=40, deadline=None)
    @given(data=keys_st.flatmap(
        lambda keys: peer_ids_min3_st.flatmap(
            lambda pids: set_queries(keys).map(lambda q: (keys, pids, q))
        )
    ))
    def test_search_matches_oracle_after_crash(self, data):
        keys, peer_ids, query = data
        system = DLPTSystem(alphabet=ALPHABET, capacity_model=FixedCapacity(10**9))
        system.add_peers(random.Random(1), peer_ids=peer_ids)
        system.register_batch(keys)
        victim = sorted(p.id for p in system.ring)[len(peer_ids) // 2]
        crash_peer(system, victim)
        out = system.search(query, rng=random.Random(7))
        # Post-crash ground truth: whatever keys survived the crash.
        expected = sorted(k for k in system.registered_keys() if query.matches(k))
        assert list(out.results) == expected

    @settings(max_examples=30, deadline=None)
    @given(data=keys_st.flatmap(
        lambda keys: multi_attribute_queries(
            {"lib": set(keys), "os": set(k[::-1] or "a" for k in keys)}
        ).map(lambda q: (keys, q))
    ))
    def test_multi_attribute_matches_oracle(self, data):
        keys, query = data
        pairs = [attribute_key("lib", k) for k in keys]
        pairs += [attribute_key("os", k[::-1] or "a") for k in keys]
        # Composed ``attr=value`` keys need the full printable alphabet.
        system = DLPTSystem(capacity_model=FixedCapacity(10**9))
        system.build(random.Random(1), 6)
        system.register_batch(pairs)
        assert_oracle_equal(system, query, rng=random.Random(7))


@pytest.fixture(scope="module")
def big_keys():
    """A 1000+-key corpus over the service-name distribution (the base
    729-name corpus plus versioned variants — deeper shared prefixes)."""
    corpus = grid_service_corpus()
    corpus = sorted(set(corpus) | {k + ".2" for k in corpus})
    assert len(corpus) >= 1000
    return corpus[:1200]


class TestLargeTree:
    def test_probe_panel_matches_oracle(self, big_keys):
        system = DLPTSystem(capacity_model=FixedCapacity(10**9))
        system.build(random.Random(11), 50)
        system.register_batch(big_keys)
        rng = random.Random(23)
        for query in probe_panel(big_keys):
            assert_oracle_equal(system, query, rng=rng)

    def test_random_entries_do_not_change_results(self, big_keys):
        """The entry node affects hops, never the answer."""
        system = DLPTSystem(capacity_model=FixedCapacity(10**9))
        system.build(random.Random(11), 50)
        system.register_batch(big_keys)
        query = PrefixQuery(big_keys[17][:4])
        baseline = system.search(query).results  # enters at the scan root
        rng = random.Random(5)
        for _ in range(10):
            assert system.search(query, rng=rng).results == baseline


class TestAfterChurnCrashRepair:
    """The acceptance matrix: oracle equality on every reshaped tree."""

    def _probe(self, system, keys):
        rng = random.Random(99)
        for query in probe_panel(keys):
            assert_oracle_equal(system, query, rng=rng)

    def test_after_peer_churn(self, big_keys):
        system = DLPTSystem(capacity_model=FixedCapacity(10**9))
        system.build(random.Random(3), 40)
        system.register_batch(big_keys[:1000])
        churn_rng = random.Random(44)
        for _ in range(10):
            system.add_peer(churn_rng)
        for pid in sorted(p.id for p in system.ring)[::7][:5]:
            system.remove_peer(pid)
        system.check_invariants()
        self._probe(system, big_keys[:1000])

    def test_after_crashes_damaged_forest(self, big_keys):
        # The seed-2 recipe shatters the tree into several fragments
        # (including, at some seeds, a rootless forest) — the walking
        # resolver must still sweep every surviving key.
        system = DLPTSystem(capacity_model=FixedCapacity(10**9))
        system.build(random.Random(2), 50)
        system.register_batch(big_keys[:500])
        crash_rng = random.Random(2 + 100)
        for _ in range(6):
            ids = sorted(p.id for p in system.ring)
            crash_peer(system, ids[crash_rng.randrange(len(ids))])
        self._probe(system, sorted(system.registered_keys() or {"a"}))

    def test_after_repair(self, big_keys):
        system = DLPTSystem(capacity_model=FixedCapacity(10**9))
        system.build(random.Random(2), 50)
        system.register_batch(big_keys[:500])
        replication = ReplicationManager(system, factor=1)
        crash_rng = random.Random(102)
        lost = set()
        for _ in range(4):
            ids = sorted(p.id for p in system.ring)
            report = crash_peer(system, ids[crash_rng.randrange(len(ids))])
            lost |= set(report.lost_keys)
        repair(system, replication, lost_keys=frozenset(lost))
        system.check_invariants()
        self._probe(system, sorted(system.registered_keys()))


class TestMemoInvalidationUnderBatches:
    """Interleaved bulk registration and scans: the router's version
    counters must invalidate any spine/subtree memo, so a scan issued
    after a batch sees exactly the post-batch key set."""

    def test_results_track_each_batch(self, big_keys):
        system = DLPTSystem(capacity_model=FixedCapacity(10**9))
        system.build(random.Random(17), 30)
        rng = random.Random(31)
        chunks = [big_keys[i : i + 100] for i in range(0, 600, 100)]
        query = PrefixQuery("")
        for chunk in chunks:
            system.register_batch(chunk)
            # Scan immediately after the batch, twice (a stale memo would
            # poison the second scan even if the first recomputed).
            for _ in range(2):
                assert_oracle_equal(system, query, rng=rng)
                for probe in probe_panel(sorted(system.registered_keys())):
                    assert_oracle_equal(system, probe, rng=rng)

    def test_unregister_between_scans(self, big_keys):
        system = DLPTSystem(capacity_model=FixedCapacity(10**9))
        system.build(random.Random(17), 30)
        system.register_batch(big_keys[:200])
        rng = random.Random(31)
        query = RangeQuery(big_keys[0], big_keys[199])
        assert_oracle_equal(system, query, rng=rng)
        for key in big_keys[50:150:10]:
            system.unregister(key)
            assert_oracle_equal(system, query, rng=rng)

    def test_matched_sets_never_served_from_structural_memo(self, big_keys):
        """Registering a key under an already-scanned band must appear in
        the very next scan (filled-count changes without any label-level
        structure changing when the node already existed)."""
        system = DLPTSystem(capacity_model=FixedCapacity(10**9))
        system.build(random.Random(17), 30)
        system.register_batch(big_keys[:100])
        probe = PrefixQuery(big_keys[0][:2])
        before = list(system.search(probe).results)
        fresh = big_keys[0][:2] + ".fresh.service"
        system.register(fresh)
        after = list(system.search(probe).results)
        assert fresh in after
        assert sorted(before + [fresh]) == after
