"""DLPTSystem: registration, discovery, accounting models, time units."""

from __future__ import annotations

import random

import pytest

from repro.core.alphabet import BINARY, PRINTABLE
from repro.dlpt.system import DLPTSystem, corpus_peer_id_sampler
from repro.peers.capacity import FixedCapacity


def tiny_system(rng, capacity=1000, n_peers=5):
    s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(capacity))
    s.build(rng, n_peers)
    return s


class TestRegistration:
    def test_register_creates_mapped_nodes(self, rng):
        s = tiny_system(rng)
        s.register("1010")
        s.register("1001")
        assert s.n_nodes == 3  # two keys + structural "10"
        s.check_invariants()

    def test_register_requires_peers(self, rng):
        s = DLPTSystem(alphabet=BINARY)
        with pytest.raises(RuntimeError):
            s.register("1")

    def test_register_validates_alphabet(self, rng):
        s = tiny_system(rng)
        with pytest.raises(ValueError):
            s.register("xyz")

    def test_unregister_contracts(self, rng):
        s = tiny_system(rng)
        s.register("1010")
        s.register("1001")
        assert s.unregister("1001")
        s.check_invariants()
        assert s.n_nodes == 1

    def test_registered_keys(self, rng):
        s = tiny_system(rng)
        s.register("1010")
        s.register("1001")
        assert s.registered_keys() == {"1010", "1001"}


class TestDiscovery:
    def test_satisfied_request(self, rng):
        s = tiny_system(rng)
        s.register("1010")
        out = s.discover("1010", rng=rng)
        assert out.satisfied and out.found and not out.dropped

    def test_missing_key_not_found(self, rng):
        s = tiny_system(rng)
        s.register("1010")
        out = s.discover("0001", rng=rng)
        assert not out.satisfied and not out.found and not out.dropped

    def test_explicit_entry(self, rng):
        s = tiny_system(rng)
        s.register("1010")
        s.register("1001")
        out = s.discover("1010", entry_label="1001")
        assert out.satisfied and out.logical_hops == 2  # 1001 -> 10 -> 1010

    def test_entry_without_rng_raises(self, rng):
        s = tiny_system(rng)
        s.register("1")
        with pytest.raises(ValueError):
            s.discover("1")

    def test_empty_tree_raises(self, rng):
        s = tiny_system(rng)
        with pytest.raises(RuntimeError):
            s.discover("1", rng=rng)

    def test_unknown_accounting_rejected(self, rng):
        s = tiny_system(rng)
        s.register("1")
        with pytest.raises(ValueError):
            s.discover("1", rng=rng, accounting="teleport")


class TestDestinationAccounting:
    def test_drop_when_destination_exhausted(self, rng):
        s = tiny_system(rng, capacity=1)
        s.register("1010")
        host = s.mapping.host_of("1010")
        first = s.discover("1010", entry_label="1010")
        second = s.discover("1010", entry_label="1010")
        assert first.satisfied and not second.satisfied
        assert second.dropped_at == host.id

    def test_transit_nodes_do_not_consume(self, rng):
        s = tiny_system(rng, capacity=1)
        s.register("1010")
        s.register("1001")
        # Route through the structural node "10" must not charge its host.
        host10 = s.mapping.host_of("10")
        used_before = host10.used
        s.discover("1010", entry_label="1001")
        host_dest = s.mapping.host_of("1010")
        if host10 is not host_dest:
            assert host10.used == used_before


class TestTransitAccounting:
    def test_every_hop_charges(self, rng):
        s = tiny_system(rng, capacity=1000)
        s.register("1010")
        s.register("1001")
        out = s.discover("1010", entry_label="1001", accounting="transit")
        assert out.satisfied
        total_used = sum(p.used for p in s.ring)
        assert total_used == out.logical_hops + 1  # every visited node

    def test_drop_mid_route(self, rng):
        s = tiny_system(rng, capacity=1)
        s.register("1010")
        s.register("1001")
        # Exhaust the host of the structural node "10" first.
        host10 = s.mapping.host_of("10")
        host10.used = host10.capacity
        out = s.discover("1010", entry_label="1001", accounting="transit")
        assert not out.satisfied and out.dropped_at == host10.id


class TestTimeUnits:
    def test_end_unit_aggregates_loads(self, rng):
        s = tiny_system(rng)
        s.register("1010")
        for _ in range(3):
            s.discover("1010", entry_label="1010")
        s.end_time_unit()
        assert s.node_last_load("1010") == 3
        assert s.time_unit == 1

    def test_budgets_reset(self, rng):
        s = tiny_system(rng, capacity=1)
        s.register("1")
        assert s.discover("1", entry_label="1").satisfied
        assert not s.discover("1", entry_label="1").satisfied
        s.end_time_unit()
        assert s.discover("1", entry_label="1").satisfied

    def test_load_history_is_one_unit(self, rng):
        s = tiny_system(rng)
        s.register("1")
        s.discover("1", entry_label="1")
        s.end_time_unit()
        s.end_time_unit()
        assert s.node_last_load("1") == 0


class TestPhysicalHops:
    def test_same_peer_path_has_zero_physical_hops(self, rng):
        s = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(100))
        s.add_peer(rng, peer_id="1" * 24)  # single peer hosts everything
        s.register("1010")
        s.register("1001")
        out = s.discover("1010", entry_label="1001")
        assert out.satisfied and out.physical_hops == 0 and out.logical_hops == 2

    def test_physical_bounded_by_logical(self, rng):
        s = tiny_system(rng, n_peers=8)
        for k in ("000", "001", "010", "011", "100", "101", "110", "111"):
            s.register(k)
        for _ in range(50):
            out = s.discover("101", rng=rng)
            assert out.physical_hops <= out.logical_hops


class TestCorpusSampler:
    def test_sampler_draws_near_corpus(self):
        sampler = corpus_peer_id_sampler(["dgemm"], PRINTABLE, alignment=1.0, prefix_digits=2)
        rng = random.Random(1)
        pid = sampler(rng)
        assert pid.startswith("dg")

    def test_alignment_zero_is_uniform(self):
        sampler = corpus_peer_id_sampler(["dgemm"], PRINTABLE, alignment=0.0)
        rng = random.Random(1)
        assert len(sampler(rng)) == 10  # suffix 8 + prefix_digits 2

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            corpus_peer_id_sampler([])

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            corpus_peer_id_sampler(["a"], alignment=1.5)
