"""Message network: delivery, latency, loss, dead-lettering."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency, Network, UniformLatency


def make_net(**kwargs):
    sim = Simulator()
    return sim, Network(sim, **kwargs)


class TestDelivery:
    def test_basic_delivery(self):
        sim, net = make_net()
        inbox = []
        net.register("b", lambda env: inbox.append(env))
        net.send("a", "b", "hello")
        sim.run_until_idle()
        assert len(inbox) == 1
        env = inbox[0]
        assert env.src == "a" and env.dst == "b" and env.payload == "hello"

    def test_fifo_between_same_pair(self):
        sim, net = make_net(latency=ConstantLatency(1.0))
        inbox = []
        net.register("b", lambda env: inbox.append(env.payload))
        for i in range(5):
            net.send("a", "b", i)
        sim.run_until_idle()
        assert inbox == [0, 1, 2, 3, 4]

    def test_counters(self):
        sim, net = make_net()
        net.register("b", lambda env: None)
        net.send("a", "b", 1)
        sim.run_until_idle()
        assert net.messages_sent == 1 and net.messages_delivered == 1

    def test_unregistered_destination_dead_letters(self):
        sim, net = make_net()
        net.send("a", "ghost", 1)
        sim.run_until_idle()
        assert net.messages_dead_lettered == 1

    def test_unregister_mid_flight(self):
        sim, net = make_net(latency=ConstantLatency(5.0))
        net.register("b", lambda env: None)
        net.send("a", "b", 1)
        net.unregister("b")
        sim.run_until_idle()
        assert net.messages_dead_lettered == 1

    def test_reregistration_replaces_handler(self):
        sim, net = make_net()
        first, second = [], []
        net.register("b", lambda env: first.append(env))
        net.register("b", lambda env: second.append(env))
        net.send("a", "b", 1)
        sim.run_until_idle()
        assert not first and len(second) == 1


class TestLatency:
    def test_constant_latency_delays_delivery(self):
        sim, net = make_net(latency=ConstantLatency(3.0))
        times = []
        net.register("b", lambda env: times.append(sim.now))
        net.send("a", "b", 1)
        sim.run_until_idle()
        assert times == [3.0]

    def test_uniform_latency_within_bounds(self):
        rng = random.Random(5)
        model = UniformLatency(rng, lo=1.0, hi=2.0)
        for _ in range(50):
            assert 1.0 <= model.sample("a", "b") <= 2.0

    def test_uniform_latency_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(random.Random(1), lo=3, hi=2)


class TestLoss:
    def test_loss_requires_rng(self):
        with pytest.raises(ValueError):
            Network(Simulator(), loss_rate=0.5)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            Network(Simulator(), loss_rate=1.0, rng=random.Random(1))

    def test_total_loss_near_one_drops_most(self):
        sim = Simulator()
        net = Network(sim, loss_rate=0.99, rng=random.Random(1))
        inbox = []
        net.register("b", lambda env: inbox.append(env))
        for _ in range(200):
            net.send("a", "b", 1)
        sim.run_until_idle()
        assert net.messages_dropped > 150
        assert net.messages_dropped + net.messages_delivered == 200
