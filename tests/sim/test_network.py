"""Message network: delivery, latency, loss, dead-lettering."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency, LatencyModel, Network, UniformLatency


def make_net(**kwargs):
    sim = Simulator()
    return sim, Network(sim, **kwargs)


class TestDelivery:
    def test_basic_delivery(self):
        sim, net = make_net()
        inbox = []
        net.register("b", lambda env: inbox.append(env))
        net.send("a", "b", "hello")
        sim.run_until_idle()
        assert len(inbox) == 1
        env = inbox[0]
        assert env.src == "a" and env.dst == "b" and env.payload == "hello"

    def test_fifo_between_same_pair(self):
        sim, net = make_net(latency=ConstantLatency(1.0))
        inbox = []
        net.register("b", lambda env: inbox.append(env.payload))
        for i in range(5):
            net.send("a", "b", i)
        sim.run_until_idle()
        assert inbox == [0, 1, 2, 3, 4]

    def test_counters(self):
        sim, net = make_net()
        net.register("b", lambda env: None)
        net.send("a", "b", 1)
        sim.run_until_idle()
        assert net.messages_sent == 1 and net.messages_delivered == 1

    def test_unregistered_destination_dead_letters(self):
        sim, net = make_net()
        net.send("a", "ghost", 1)
        sim.run_until_idle()
        assert net.messages_dead_lettered == 1

    def test_unregister_mid_flight(self):
        sim, net = make_net(latency=ConstantLatency(5.0))
        net.register("b", lambda env: None)
        net.send("a", "b", 1)
        net.unregister("b")
        sim.run_until_idle()
        assert net.messages_dead_lettered == 1

    def test_reregistration_replaces_handler(self):
        sim, net = make_net()
        first, second = [], []
        net.register("b", lambda env: first.append(env))
        net.register("b", lambda env: second.append(env))
        net.send("a", "b", 1)
        sim.run_until_idle()
        assert not first and len(second) == 1


class TestLatency:
    def test_constant_latency_delays_delivery(self):
        sim, net = make_net(latency=ConstantLatency(3.0))
        times = []
        net.register("b", lambda env: times.append(sim.now))
        net.send("a", "b", 1)
        sim.run_until_idle()
        assert times == [3.0]

    def test_uniform_latency_within_bounds(self):
        rng = random.Random(5)
        model = UniformLatency(rng, lo=1.0, hi=2.0)
        for _ in range(50):
            assert 1.0 <= model.sample("a", "b") <= 2.0

    def test_uniform_latency_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(random.Random(1), lo=3, hi=2)


class TestLoss:
    def test_loss_requires_rng(self):
        with pytest.raises(ValueError):
            Network(Simulator(), loss_rate=0.5)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            Network(Simulator(), loss_rate=1.0, rng=random.Random(1))

    def test_total_loss_near_one_drops_most(self):
        sim = Simulator()
        net = Network(sim, loss_rate=0.99, rng=random.Random(1))
        inbox = []
        net.register("b", lambda env: inbox.append(env))
        for _ in range(200):
            net.send("a", "b", 1)
        sim.run_until_idle()
        assert net.messages_dropped > 150
        assert net.messages_dropped + net.messages_delivered == 200


class _RecordingLatency(LatencyModel):
    """A latency model that records every draw it is asked for."""

    def __init__(self, inner: LatencyModel) -> None:
        self.inner = inner
        self.samples = []

    def sample(self, src, dst) -> float:
        value = self.inner.sample(src, dst)
        self.samples.append(value)
        return value


class TestLossLatencyRngIndependence:
    """Regression: the loss decision and the latency draw are independent
    random streams.

    The :class:`repro.net.transport.Transport` contract (and any experiment
    whose loss rate is swept at fixed latency seed, or vice versa) relies on
    two properties of :meth:`Network.send`: the drop decision comes from the
    network's own loss RNG *before* any latency sampling, and the latency
    model's RNG is consumed exactly once per *surviving* message — dropped
    messages must not advance it.  A refactor that samples latency first
    (or for every message) would silently reshuffle every seeded experiment
    that mixes loss and stochastic latency.
    """

    def _drop_pattern(self, latency, n=300, seed=42):
        sim = Simulator()
        net = Network(sim, latency=latency, loss_rate=0.3, rng=random.Random(seed))
        net.register("b", lambda env: None)
        pattern = []
        for i in range(n):
            before = net.messages_dropped
            net.send("a", "b", i)
            pattern.append(net.messages_dropped > before)
        sim.run_until_idle()
        return net, pattern

    def test_latency_sampled_only_for_survivors(self):
        latency = _RecordingLatency(ConstantLatency(1.0))
        net, pattern = self._drop_pattern(latency)
        assert 0 < net.messages_dropped < net.messages_sent
        assert len(latency.samples) == net.messages_sent - net.messages_dropped

    def test_drop_pattern_is_independent_of_the_latency_model(self):
        """Same loss seed, different latency models: identical drops."""
        _, constant = self._drop_pattern(ConstantLatency(1.0))
        _, uniform = self._drop_pattern(UniformLatency(random.Random(7), 0.5, 1.5))
        _, zero = self._drop_pattern(LatencyModel())
        assert constant == uniform == zero
        assert any(constant) and not all(constant)

    def test_latency_stream_is_consumed_in_send_order_survivors_only(self):
        """The k-th surviving message gets the k-th draw of the latency
        RNG — byte-for-byte what a loss-free run of the same seed would
        produce, truncated to the survivor count."""
        latency = _RecordingLatency(UniformLatency(random.Random(7), 0.5, 1.5))
        net, pattern = self._drop_pattern(latency)
        survivors = pattern.count(False)
        oracle = random.Random(7)
        assert latency.samples == [oracle.uniform(0.5, 1.5) for _ in range(survivors)]

    def test_counter_invariant_under_loss_and_churn(self):
        sim = Simulator()
        net = Network(
            sim,
            latency=UniformLatency(random.Random(3), 0.5, 1.5),
            loss_rate=0.2,
            rng=random.Random(4),
        )
        net.register("b", lambda env: None)
        for i in range(100):
            net.send("a", "b", i)
            if i == 50:
                net.unregister("b")  # in-flight messages dead-letter
        sim.run_until_idle()
        assert net.messages_sent == 100
        assert net.messages_sent == (
            net.messages_delivered + net.messages_dropped + net.messages_dead_lettered
        )
