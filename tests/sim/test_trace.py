"""Tracing and per-period counters."""

from __future__ import annotations

import pytest

from repro.sim.trace import CounterSet, Trace


class TestTrace:
    def test_record_and_filter(self):
        t = Trace()
        t.record(0.0, "join", peer="a")
        t.record(1.0, "leave", peer="b")
        t.record(2.0, "join", peer="c")
        assert len(t) == 3
        assert [e.detail["peer"] for e in t.of_kind("join")] == ["a", "c"]

    def test_kinds_counter(self):
        t = Trace()
        t.record(0, "x")
        t.record(0, "x")
        t.record(0, "y")
        assert t.kinds() == {"x": 2, "y": 1}

    def test_disabled_trace_is_noop(self):
        t = Trace(enabled=False)
        t.record(0, "x")
        assert len(t) == 0

    def test_capacity_guard(self):
        t = Trace(capacity=1)
        t.record(0, "x")
        with pytest.raises(RuntimeError):
            t.record(1, "y")

    def test_clear(self):
        t = Trace()
        t.record(0, "x")
        t.clear()
        assert len(t) == 0


class TestCounterSet:
    def test_incr_and_totals(self):
        c = CounterSet()
        c.incr("satisfied")
        c.incr("satisfied", 2)
        assert c.total("satisfied") == 3

    def test_snapshot_resets_period_not_total(self):
        c = CounterSet()
        c.incr("x", 5)
        assert c.snapshot() == {"x": 5}
        c.incr("x", 2)
        assert c.snapshot() == {"x": 2}
        assert c.total("x") == 7

    def test_unknown_counter_reads_zero(self):
        assert CounterSet().total("nope") == 0

    def test_period_value(self):
        c = CounterSet()
        c.incr("x")
        assert c.period_value("x") == 1
        c.snapshot()
        assert c.period_value("x") == 0
