"""Discrete-event engine: ordering, cancellation, run bounds."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3, lambda: log.append("c"))
        sim.schedule(1, lambda: log.append("a"))
        sim.schedule(2, lambda: log.append("b"))
        sim.run_until_idle()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run_until_idle()
        assert log == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [4.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(1, lambda: log.append(("inner", sim.now)))

        sim.schedule(1, outer)
        sim.run_until_idle()
        assert log == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        h = sim.schedule(1, lambda: log.append("x"))
        assert h.cancel()
        sim.run_until_idle()
        assert log == []

    def test_double_cancel_returns_false(self):
        h = Simulator().schedule(1, lambda: None)
        assert h.cancel()
        assert not h.cancel()

    def test_handle_exposes_time(self):
        sim = Simulator()
        h = sim.schedule(2.5, lambda: None)
        assert h.time == 2.5 and not h.cancelled

    def test_mass_cancellation_compacts_queue(self):
        """Cancelled tombstones must not accumulate: once they outnumber
        live events the heap is rebuilt without them."""
        sim = Simulator()
        handles = [sim.schedule(i + 1, lambda: None) for i in range(1000)]
        keep = handles[::10]
        for h in handles:
            if h not in keep:
                h.cancel()
        assert sim.pending < 300  # 900 tombstones would remain uncompacted
        fired = sim.run_until_idle()
        assert fired == len(keep)

    def test_execution_order_preserved_across_compaction(self):
        sim = Simulator()
        log = []
        handles = [sim.schedule(i + 1, lambda i=i: log.append(i)) for i in range(200)]
        for i, h in enumerate(handles):
            if i % 2:
                h.cancel()
        sim.run_until_idle()
        assert log == [i for i in range(200) if i % 2 == 0]

    def test_cancel_after_fire_does_not_corrupt_counter(self):
        sim = Simulator()
        h = sim.schedule(1, lambda: None)
        sim.run_until_idle()
        assert not h.cancel()  # already executed: not live, nothing pre-empted
        # More live schedule/cancel churn must still work.
        for _ in range(100):
            sim.schedule(1, lambda: None).cancel()
        assert sim.run_until_idle() == 0


class TestRunBounds:
    def test_run_until_time(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: log.append(1))
        sim.schedule(5, lambda: log.append(5))
        sim.run(until=3)
        assert log == [1]
        assert sim.now == 3
        sim.run_until_idle()
        assert log == [1, 5]

    def test_run_max_events(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(i, lambda i=i: log.append(i))
        executed = sim.run(max_events=4)
        assert executed == 4 and log == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()

    def test_livelock_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(1, forever)
        with pytest.raises(RuntimeError, match="quiesce"):
            sim.run_until_idle(max_events=100)

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1, lambda: None)
        sim.run_until_idle()
        assert sim.events_executed == 3

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0
