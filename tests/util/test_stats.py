"""Statistics helpers: series aggregation and the Table 1 gain metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.stats import (
    gain_percent,
    mean_ci,
    steady_state_mean,
    summarize_series,
)


class TestSummarizeSeries:
    def test_mean_of_constant_runs(self):
        s = summarize_series([[1, 2, 3], [1, 2, 3]])
        assert np.allclose(s.mean, [1, 2, 3])
        assert np.allclose(s.std, 0)
        assert np.allclose(s.ci95, 0)

    def test_mean_across_runs(self):
        s = summarize_series([[0, 0], [2, 4]])
        assert np.allclose(s.mean, [1, 2])

    def test_single_run_has_zero_ci(self):
        s = summarize_series([[5, 5, 5]])
        assert s.n_runs == 1
        assert np.allclose(s.ci95, 0)

    def test_ragged_runs_rejected(self):
        with pytest.raises(ValueError):
            summarize_series([[1, 2], [1]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_series([])

    def test_len(self):
        assert len(summarize_series([[1, 2, 3]])) == 3


class TestMeanCI:
    def test_single_value(self):
        assert mean_ci([4.0]) == (4.0, 0.0)

    def test_symmetric_sample(self):
        m, ci = mean_ci([1.0, 3.0])
        assert m == 2.0 and ci > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])


class TestGain:
    def test_paper_style_gain(self):
        # 230.51% gain = heuristic satisfied 3.3051x the baseline.
        assert gain_percent(330.51, 100.0) == pytest.approx(230.51)

    def test_zero_gain(self):
        assert gain_percent(50, 50) == 0.0

    def test_negative_gain(self):
        assert gain_percent(40, 50) == pytest.approx(-20.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            gain_percent(10, 0)


class TestSteadyState:
    def test_discards_warmup(self):
        assert steady_state_mean([0, 0, 10, 10], warmup=2) == 10.0

    def test_all_warmup_rejected(self):
        with pytest.raises(ValueError):
            steady_state_mean([1, 2], warmup=2)
