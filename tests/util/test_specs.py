"""The unified spec surface: registry, error hierarchy, signature hashing.

Every compact-spec syntax (workloads, faults, queries, balancers) goes
through ``repro.util.specs.parse_spec``; these tests pin the registry
contract — one entry point, one ``SpecError`` hierarchy, one stable
``spec_hash`` — and that the pre-registry module entry points remain
working shims over it.
"""

from __future__ import annotations

import pytest

from repro.core.queries import QuerySpecError
from repro.faults.spec import FaultSpecError, parse_faults
from repro.lb import BalancerSpecError, balancer_from_spec
from repro.util.specs import (
    SpecError,
    UnknownSpecKindError,
    parse_options,
    parse_spec,
    register_spec_kind,
    spec_hash,
    spec_kinds,
    spec_signature,
    split_spec,
)
from repro.workloads.queries import parse_queries
from repro.workloads.spec import WorkloadSpecError, parse_workload


class TestTokenisation:
    def test_split_spec(self):
        assert split_spec("zipf:1.2:n=4") == ("zipf", ["1.2", "n=4"])
        assert split_spec("uniform") == ("uniform", [])

    def test_parse_options(self):
        assert parse_options(["a=1", "b=x"], "spec") == {"a": "1", "b": "x"}

    def test_parse_options_rejects_bare_token(self):
        with pytest.raises(SpecError, match="key=value"):
            parse_options(["oops"], "balancer:oops")


class TestRegistry:
    def test_builtin_kinds_are_registered(self):
        kinds = spec_kinds()
        for kind in ("workload", "faults", "queries", "balancer"):
            assert kind in kinds

    def test_parse_spec_dispatches_every_builtin_kind(self):
        assert parse_spec("workload", "zipf:1.2") is not None
        assert parse_spec("faults", "crash_storm:0.05") is not None
        assert parse_spec("queries", "mixed:n=2") is not None
        assert parse_spec("balancer", "mlt:fraction=0.5") is not None

    def test_unknown_kind_raises(self):
        with pytest.raises(UnknownSpecKindError, match="no-such-kind"):
            parse_spec("no-such-kind", "anything")

    def test_registering_a_kind_makes_it_parseable(self):
        register_spec_kind("test-kind", lambda v: ("parsed", v), lambda p: list(p))
        try:
            assert parse_spec("test-kind", 7) == ("parsed", 7)
            assert spec_signature("test-kind", ("parsed", 7)) == ["parsed", 7]
        finally:
            from repro.util import specs

            specs._REGISTRY.pop("test-kind", None)

    def test_kind_without_signature_surface_raises(self):
        register_spec_kind("sigless", lambda v: v, None)
        try:
            with pytest.raises(SpecError, match="signature"):
                spec_signature("sigless", "x")
        finally:
            from repro.util import specs

            specs._REGISTRY.pop("sigless", None)


class TestErrorHierarchy:
    """One ``except SpecError`` guards any mixed configuration surface,
    and pre-registry ``except ValueError`` callers keep working."""

    @pytest.mark.parametrize(
        "cls", [WorkloadSpecError, FaultSpecError, QuerySpecError, BalancerSpecError]
    )
    def test_kind_errors_derive_from_spec_error(self, cls):
        assert issubclass(cls, SpecError)
        assert issubclass(cls, ValueError)

    @pytest.mark.parametrize(
        ("kind", "bad"),
        [
            ("workload", "no-such-workload"),
            ("faults", "no-such-fault:1"),
            ("queries", "exact:n=notanumber"),
            ("balancer", "mlt:oops"),
        ],
    )
    def test_bad_values_raise_under_one_base(self, kind, bad):
        with pytest.raises(SpecError):
            parse_spec(kind, bad)


class TestSignatureHashing:
    def test_hash_is_stable_across_parses(self):
        a = spec_hash("workload", parse_spec("workload", "zipf:1.2"))
        b = spec_hash("workload", parse_spec("workload", "zipf:1.2"))
        assert a == b
        assert len(a) == 64 and int(a, 16) >= 0

    def test_hash_distinguishes_specs_and_kinds(self):
        zipf = spec_hash("workload", parse_spec("workload", "zipf:1.2"))
        uniform = spec_hash("workload", parse_spec("workload", "uniform"))
        assert zipf != uniform
        faults = spec_hash("faults", parse_spec("faults", "crash_storm:0.05"))
        assert faults not in (zipf, uniform)

    def test_hash_ignores_dict_key_order(self):
        register_spec_kind("dictly", lambda v: v, lambda p: p)
        try:
            a = spec_hash("dictly", {"x": 1, "y": 2})
            b = spec_hash("dictly", {"y": 2, "x": 1})
            assert a == b
        finally:
            from repro.util import specs

            specs._REGISTRY.pop("dictly", None)


class TestDeprecatedShims:
    """The four pre-registry entry points still work and agree with the
    registry (they are documented as thin shims over ``parse_spec``)."""

    def test_parse_workload_matches_registry(self):
        assert spec_signature("workload", parse_workload("zipf:1.2")) == (
            spec_signature("workload", parse_spec("workload", "zipf:1.2"))
        )

    def test_parse_faults_matches_registry(self):
        assert spec_signature("faults", parse_faults("crash_storm:0.05")) == (
            spec_signature("faults", parse_spec("faults", "crash_storm:0.05"))
        )

    def test_parse_queries_matches_registry(self):
        assert parse_queries("mixed:n=2") == parse_spec("queries", "mixed:n=2")

    def test_balancer_from_spec_matches_registry(self):
        lhs = balancer_from_spec("mlt:fraction=0.5")
        rhs = parse_spec("balancer", "mlt:fraction=0.5")
        assert type(lhs) is type(rhs)
