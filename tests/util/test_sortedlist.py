"""SortedList: ordering, ceiling/floor, circular queries."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.sortedlist import SortedList


class TestBasics:
    def test_init_sorts_and_dedups(self):
        s = SortedList(["c", "a", "b", "a"])
        assert list(s) == ["a", "b", "c"]

    def test_add_keeps_order(self):
        s = SortedList(["a", "c"])
        s.add("b")
        assert list(s) == ["a", "b", "c"]

    def test_add_duplicate_raises(self):
        s = SortedList(["a"])
        with pytest.raises(ValueError):
            s.add("a")

    def test_remove(self):
        s = SortedList(["a", "b"])
        s.remove("a")
        assert list(s) == ["b"]

    def test_remove_missing_raises(self):
        with pytest.raises(ValueError):
            SortedList(["a"]).remove("b")

    def test_discard_missing_returns_false(self):
        s = SortedList(["a"])
        assert not s.discard("b")
        assert s.discard("a")

    def test_contains_and_index(self):
        s = SortedList(["a", "b", "c"])
        assert "b" in s and "z" not in s
        assert s.index("c") == 2
        with pytest.raises(ValueError):
            s.index("z")

    def test_getitem_and_len(self):
        s = SortedList(["b", "a"])
        assert s[0] == "a" and len(s) == 2

    def test_min_max(self):
        s = SortedList(["m", "a", "z"])
        assert s.min() == "a" and s.max() == "z"

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            SortedList().min()

    def test_equality(self):
        assert SortedList(["a", "b"]) == SortedList(["b", "a"])

    def test_clear(self):
        s = SortedList(["a"])
        s.clear()
        assert len(s) == 0


class TestOrderQueries:
    @pytest.fixture
    def s(self):
        return SortedList(["b", "d", "f"])

    def test_ceiling(self, s):
        assert s.ceiling("a") == "b"
        assert s.ceiling("b") == "b"  # inclusive
        assert s.ceiling("c") == "d"
        assert s.ceiling("g") is None

    def test_floor(self, s):
        assert s.floor("g") == "f"
        assert s.floor("d") == "d"  # inclusive
        assert s.floor("a") is None

    def test_higher_strict(self, s):
        assert s.higher("b") == "d"
        assert s.higher("f") is None

    def test_lower_strict(self, s):
        assert s.lower("d") == "b"
        assert s.lower("b") is None


class TestCircularQueries:
    @pytest.fixture
    def s(self):
        return SortedList(["b", "d", "f"])

    def test_successor_wraps(self, s):
        # The paper's mapping rule: lowest id >= key, wrapping to the min.
        assert s.successor("c") == "d"
        assert s.successor("d") == "d"
        assert s.successor("g") == "b"  # wrap to P_min

    def test_strict_successor_wraps(self, s):
        assert s.strict_successor("d") == "f"
        assert s.strict_successor("f") == "b"

    def test_predecessor_wraps(self, s):
        assert s.predecessor("d") == "b"
        assert s.predecessor("b") == "f"  # wrap to P_max
        assert s.predecessor("a") == "f"

    def test_empty_circular_queries_raise(self):
        for method in ("successor", "strict_successor", "predecessor"):
            with pytest.raises(ValueError):
                getattr(SortedList(), method)("x")


class TestBulkOps:
    def test_update_merges_sorted(self):
        s = SortedList(["b", "e"])
        s.update(["d", "a", "c"])
        assert list(s) == ["a", "b", "c", "d", "e"]

    def test_update_empty_is_noop(self):
        s = SortedList(["a"])
        s.update([])
        assert list(s) == ["a"]

    def test_update_duplicate_raises_atomically(self):
        s = SortedList(["a", "b"])
        with pytest.raises(ValueError):
            s.update(["0", "b"])  # "0" sorts first: would insert before the dup
        assert list(s) == ["a", "b"]  # small-batch path left untouched

    def test_update_internal_duplicate_raises(self):
        s = SortedList(["a"])
        with pytest.raises(ValueError):
            s.update(["x", "x", "y", "z", "w", "v"])
        assert list(s) == ["a"]

    def test_update_large_batch_merge_path(self):
        s = SortedList(range(0, 100, 2))
        s.update(range(1, 100, 2))
        assert list(s) == list(range(100))

    def test_remove_many(self):
        s = SortedList("abcdef")
        s.remove_many(["b", "d", "f"])
        assert list(s) == ["a", "c", "e"]

    def test_remove_many_large_batch_filter_path(self):
        s = SortedList(range(100))
        s.remove_many(range(0, 100, 2))
        assert list(s) == list(range(1, 100, 2))

    def test_remove_many_missing_raises_atomically(self):
        s = SortedList("abc")
        with pytest.raises(ValueError):
            s.remove_many(["a", "z"])
        assert list(s) == ["a", "b", "c"]  # small-batch path left untouched

    def test_remove_many_missing_raises_on_filter_path(self):
        s = SortedList(range(20))
        with pytest.raises(ValueError):
            s.remove_many(list(range(15)) + [99])


class TestIndexAndRanges:
    @pytest.fixture
    def s(self):
        return SortedList(["b", "d", "d2", "f"])

    def test_index_left_right(self, s):
        assert s.index_left("d") == 1
        assert s.index_right("d") == 2
        assert s.index_left("a") == 0
        assert s.index_right("z") == 4

    def test_slice(self, s):
        assert s.slice(1, 3) == ["d", "d2"]

    def test_range_open_closed_plain(self, s):
        assert s.range_open_closed("b", "d2") == ["d", "d2"]
        assert s.range_open_closed("a", "z") == ["b", "d", "d2", "f"]

    def test_range_open_closed_excludes_lower_includes_upper(self, s):
        assert s.range_open_closed("d", "f") == ["d2", "f"]

    def test_range_open_closed_wraps(self, s):
        # (f, b]: the arc through the space origin.
        assert s.range_open_closed("f", "b") == ["b"]
        assert s.range_open_closed("e", "d") == ["f", "b", "d"]

    def test_range_open_closed_degenerate_is_everything(self, s):
        # (a, a] is the full ring — the single-peer interval.
        assert s.range_open_closed("d", "d") == ["d2", "f", "b", "d"]


class TestPropertyBased:
    @given(items=st.sets(st.integers(0, 1000), min_size=1, max_size=60),
           key=st.integers(-10, 1010))
    def test_successor_is_ceiling_with_wrap(self, items, key):
        s = SortedList(items)
        expected = min((i for i in items if i >= key), default=min(items))
        assert s.successor(key) == expected

    @given(items=st.sets(st.integers(0, 1000), min_size=1, max_size=60),
           key=st.integers(-10, 1010))
    def test_predecessor_is_strict_floor_with_wrap(self, items, key):
        s = SortedList(items)
        expected = max((i for i in items if i < key), default=max(items))
        assert s.predecessor(key) == expected

    @given(items=st.sets(st.integers(0, 100), max_size=40),
           batch=st.sets(st.integers(101, 300), max_size=40))
    def test_update_equals_individual_adds(self, items, batch):
        bulk = SortedList(items)
        bulk.update(batch)
        one_by_one = SortedList(items)
        for v in sorted(batch):
            one_by_one.add(v)
        assert bulk == one_by_one

    @given(items=st.sets(st.integers(0, 200), min_size=1, max_size=60),
           a=st.integers(-10, 210), b=st.integers(-10, 210))
    def test_range_open_closed_matches_predicate(self, items, a, b):
        from repro.core.keyspace import in_interval_open_closed

        s = SortedList(items)
        got = s.range_open_closed(a, b)
        expected = [x for x in sorted(items) if in_interval_open_closed(x, a, b)]
        assert sorted(got) == expected

    @given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 50)), max_size=80))
    def test_mirrors_a_python_set(self, ops):
        s = SortedList()
        model = set()
        for add, v in ops:
            if add and v not in model:
                s.add(v)
                model.add(v)
            elif not add:
                assert s.discard(v) == (v in model)
                model.discard(v)
        assert list(s) == sorted(model)
