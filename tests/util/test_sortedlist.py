"""SortedList: ordering, ceiling/floor, circular queries."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.sortedlist import SortedList


class TestBasics:
    def test_init_sorts_and_dedups(self):
        s = SortedList(["c", "a", "b", "a"])
        assert list(s) == ["a", "b", "c"]

    def test_add_keeps_order(self):
        s = SortedList(["a", "c"])
        s.add("b")
        assert list(s) == ["a", "b", "c"]

    def test_add_duplicate_raises(self):
        s = SortedList(["a"])
        with pytest.raises(ValueError):
            s.add("a")

    def test_remove(self):
        s = SortedList(["a", "b"])
        s.remove("a")
        assert list(s) == ["b"]

    def test_remove_missing_raises(self):
        with pytest.raises(ValueError):
            SortedList(["a"]).remove("b")

    def test_discard_missing_returns_false(self):
        s = SortedList(["a"])
        assert not s.discard("b")
        assert s.discard("a")

    def test_contains_and_index(self):
        s = SortedList(["a", "b", "c"])
        assert "b" in s and "z" not in s
        assert s.index("c") == 2
        with pytest.raises(ValueError):
            s.index("z")

    def test_getitem_and_len(self):
        s = SortedList(["b", "a"])
        assert s[0] == "a" and len(s) == 2

    def test_min_max(self):
        s = SortedList(["m", "a", "z"])
        assert s.min() == "a" and s.max() == "z"

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            SortedList().min()

    def test_equality(self):
        assert SortedList(["a", "b"]) == SortedList(["b", "a"])

    def test_clear(self):
        s = SortedList(["a"])
        s.clear()
        assert len(s) == 0


class TestOrderQueries:
    @pytest.fixture
    def s(self):
        return SortedList(["b", "d", "f"])

    def test_ceiling(self, s):
        assert s.ceiling("a") == "b"
        assert s.ceiling("b") == "b"  # inclusive
        assert s.ceiling("c") == "d"
        assert s.ceiling("g") is None

    def test_floor(self, s):
        assert s.floor("g") == "f"
        assert s.floor("d") == "d"  # inclusive
        assert s.floor("a") is None

    def test_higher_strict(self, s):
        assert s.higher("b") == "d"
        assert s.higher("f") is None

    def test_lower_strict(self, s):
        assert s.lower("d") == "b"
        assert s.lower("b") is None


class TestCircularQueries:
    @pytest.fixture
    def s(self):
        return SortedList(["b", "d", "f"])

    def test_successor_wraps(self, s):
        # The paper's mapping rule: lowest id >= key, wrapping to the min.
        assert s.successor("c") == "d"
        assert s.successor("d") == "d"
        assert s.successor("g") == "b"  # wrap to P_min

    def test_strict_successor_wraps(self, s):
        assert s.strict_successor("d") == "f"
        assert s.strict_successor("f") == "b"

    def test_predecessor_wraps(self, s):
        assert s.predecessor("d") == "b"
        assert s.predecessor("b") == "f"  # wrap to P_max
        assert s.predecessor("a") == "f"

    def test_empty_circular_queries_raise(self):
        for method in ("successor", "strict_successor", "predecessor"):
            with pytest.raises(ValueError):
                getattr(SortedList(), method)("x")


class TestPropertyBased:
    @given(items=st.sets(st.integers(0, 1000), min_size=1, max_size=60),
           key=st.integers(-10, 1010))
    def test_successor_is_ceiling_with_wrap(self, items, key):
        s = SortedList(items)
        expected = min((i for i in items if i >= key), default=min(items))
        assert s.successor(key) == expected

    @given(items=st.sets(st.integers(0, 1000), min_size=1, max_size=60),
           key=st.integers(-10, 1010))
    def test_predecessor_is_strict_floor_with_wrap(self, items, key):
        s = SortedList(items)
        expected = max((i for i in items if i < key), default=max(items))
        assert s.predecessor(key) == expected

    @given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 50)), max_size=80))
    def test_mirrors_a_python_set(self, ops):
        s = SortedList()
        model = set()
        for add, v in ops:
            if add and v not in model:
                s.add(v)
                model.add(v)
            elif not add:
                assert s.discard(v) == (v in model)
                model.discard(v)
        assert list(s) == sorted(model)
