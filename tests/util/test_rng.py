"""Named RNG streams: determinism, independence, spawning."""

from __future__ import annotations

from repro.util.rng import RngStreams


class TestStreams:
    def test_same_name_returns_same_stream(self):
        s = RngStreams(1)
        assert s.stream("churn") is s.stream("churn")

    def test_same_seed_same_sequence(self):
        a = RngStreams(42).stream("workload")
        b = RngStreams(42).stream("workload")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        s = RngStreams(42)
        a = [s.stream("a").random() for _ in range(5)]
        b = [s.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random()
        b = RngStreams(2).stream("x").random()
        assert a != b

    def test_spawn_is_deterministic(self):
        a = RngStreams(42).spawn(3).stream("x").random()
        b = RngStreams(42).spawn(3).stream("x").random()
        assert a == b

    def test_spawn_indices_differ(self):
        base = RngStreams(42)
        assert (
            base.spawn(0).stream("x").random()
            != base.spawn(1).stream("x").random()
        )

    def test_common_random_numbers_use_case(self):
        """Two experiments with the same seed share the workload stream —
        the property the figure comparisons rely on."""
        run_a = RngStreams(7).spawn(0)
        run_b = RngStreams(7).spawn(0)
        wl_a = [run_a.stream("requests").randrange(100) for _ in range(20)]
        # run_b consumes its lb stream differently (as KC would)...
        [run_b.stream("lb").random() for _ in range(50)]
        wl_b = [run_b.stream("requests").randrange(100) for _ in range(20)]
        # ...but the request stream is unaffected.
        assert wl_a == wl_b

    def test_repr_mentions_seed(self):
        assert "42" in repr(RngStreams(42))
