"""Result-store correctness: byte-identical hits, corruption detection."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import series_from_dict, series_to_dict
from repro.experiments.runner import run_many
from repro.sweeps import ResultStore, ResultStoreError, SweepCell
from repro.workloads.keys import blas_routines

TINY = dict(
    n_peers=10, corpus=blas_routines()[:40], growth_units=2,
    total_units=5, load_fraction=0.2,
)


@pytest.fixture
def cell() -> SweepCell:
    return SweepCell(config=ExperimentConfig(**TINY), n_runs=3, label="NoLB")


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_miss_returns_none(self, store, cell):
        assert store.get(cell.key()) is None
        assert cell.key() not in store

    def test_hit_is_byte_identical(self, store, cell):
        fresh = run_many(cell.config, cell.n_runs, label=cell.label)
        store.put(cell.key(), fresh, cell.signature(), elapsed_s=1.0)
        cached = store.get(cell.key())
        fresh_bytes = json.dumps(series_to_dict(fresh), sort_keys=True)
        cached_bytes = json.dumps(series_to_dict(cached), sort_keys=True)
        assert fresh_bytes == cached_bytes

    def test_serde_preserves_hop_histograms_exactly(self, cell):
        fresh = run_many(cell.config, cell.n_runs, label=cell.label)
        reloaded = series_from_dict(series_to_dict(fresh))
        for a, b in zip(fresh.runs, reloaded.runs):
            assert [u.hop_histogram for u in a.units] == [u.hop_histogram for u in b.units]
            assert a.series("load_imbalance") == b.series("load_imbalance")
            assert a.series("p95_hops") == b.series("p95_hops")

    def test_len_and_keys(self, store, cell):
        fresh = run_many(cell.config, cell.n_runs, label=cell.label)
        store.put(cell.key(), fresh, cell.signature(), elapsed_s=0.1)
        assert len(store) == 1
        assert list(store.keys()) == [cell.key()]


class TestIntegrity:
    def test_put_rejects_mismatched_key(self, store, cell):
        fresh = run_many(cell.config, cell.n_runs, label=cell.label)
        with pytest.raises(ResultStoreError):
            store.put("0" * 64, fresh, cell.signature(), elapsed_s=0.1)

    def test_get_rejects_edited_cell(self, store, cell):
        fresh = run_many(cell.config, cell.n_runs, label=cell.label)
        path = store.put(cell.key(), fresh, cell.signature(), elapsed_s=0.1)
        doc = json.loads(path.read_text())
        doc["signature"]["n_runs"] = 999  # no longer hashes to the address
        path.write_text(json.dumps(doc))
        with pytest.raises(ResultStoreError):
            store.get(cell.key())

    def test_get_rejects_unknown_schema(self, store, cell):
        fresh = run_many(cell.config, cell.n_runs, label=cell.label)
        path = store.put(cell.key(), fresh, cell.signature(), elapsed_s=0.1)
        doc = json.loads(path.read_text())
        doc["schema"] = "repro-result/999"
        path.write_text(json.dumps(doc))
        with pytest.raises(ResultStoreError):
            store.get(cell.key())

    def test_no_temp_files_left_behind(self, store, cell):
        fresh = run_many(cell.config, cell.n_runs, label=cell.label)
        store.put(cell.key(), fresh, cell.signature(), elapsed_s=0.1)
        leftovers = [p for p in store.root.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []
