"""Cell-hash stability and sweep-plan semantics."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.lb.kchoices import KChoices
from repro.lb.mlt import MLT
from repro.peers.churn import DYNAMIC
from repro.sweeps import (
    PROFILES,
    SweepCell,
    canonical_json,
    paper_plan,
    parse_shard,
    plan_from_cells,
    signature_hash,
)
from repro.workloads.keys import blas_routines

TINY = dict(
    n_peers=10, corpus=blas_routines()[:40], growth_units=2,
    total_units=5, load_fraction=0.2,
)


def tiny_cell(label="NoLB", n_runs=2, **overrides) -> SweepCell:
    params = {**TINY, **overrides}
    return SweepCell(config=ExperimentConfig(**params), n_runs=n_runs, label=label)


class TestCellHash:
    def test_same_config_same_hash(self):
        assert tiny_cell().key() == tiny_cell().key()

    def test_label_is_presentation_only(self):
        assert tiny_cell(label="a").key() == tiny_cell(label="b").key()

    @pytest.mark.parametrize(
        "change",
        [
            dict(n_peers=11),
            dict(total_units=6),
            dict(growth_units=3),
            dict(load_fraction=0.3),
            dict(seed=7),
            dict(accounting="transit"),
            dict(peer_ids="uniform"),
            dict(churn=DYNAMIC),
            dict(workload="zipf:1.2"),
            dict(corpus=blas_routines()[:39]),
        ],
        ids=lambda change: next(iter(change)),
    )
    def test_any_semantic_field_changes_the_hash(self, change):
        assert tiny_cell().key() != tiny_cell(**change).key()

    def test_n_runs_changes_the_hash(self):
        assert tiny_cell(n_runs=2).key() != tiny_cell(n_runs=3).key()

    def test_balancer_parameters_change_the_hash(self):
        base = tiny_cell()
        mlt = SweepCell(config=base.config.with_lb(MLT()), n_runs=2, label="MLT")
        mlt_half = SweepCell(
            config=base.config.with_lb(MLT(fraction=0.5)), n_runs=2, label="MLT"
        )
        kc = SweepCell(config=base.config.with_lb(KChoices(k=8)), n_runs=2, label="KC")
        assert len({base.key(), mlt.key(), mlt_half.key(), kc.key()}) == 4

    def test_dict_ordering_never_matters(self):
        signature = tiny_cell().signature()
        scrambled = dict(reversed(list(signature.items())))
        assert signature_hash(signature) == signature_hash(scrambled)
        assert canonical_json(signature) == canonical_json(scrambled)

    def test_workload_spec_and_object_forms_agree(self):
        from repro.workloads.requests import ZipfRequests

        by_spec = tiny_cell(workload="zipf:1.5")
        by_object = tiny_cell(workload=ZipfRequests(s=1.5))
        assert by_spec.key() == by_object.key()

    def test_zipf_seed_rng_is_semantic(self):
        """A custom seed_rng pins the hot-key ranking — different seeds are
        different workloads and must not share a cache cell."""
        import random

        from repro.workloads.requests import ZipfRequests

        seed1 = tiny_cell(workload=ZipfRequests(s=1.0, seed_rng=random.Random(1)))
        seed2 = tiny_cell(workload=ZipfRequests(s=1.0, seed_rng=random.Random(2)))
        seed1_again = tiny_cell(workload=ZipfRequests(s=1.0, seed_rng=random.Random(1)))
        assert seed1.key() != seed2.key()
        assert seed1.key() == seed1_again.key()

    def test_zipf_generators_aliasing_one_rng_differ(self):
        """Two generators *sharing* one Random object see different streams
        at run time (the first's draw advances the second's state), so a
        schedule over them must not hash like one over independent RNGs."""
        import random

        from repro.workloads.requests import Phase, PhasedSchedule, ZipfRequests

        def phased(gen_a, gen_b):
            return PhasedSchedule([Phase(0, 5, gen_a), Phase(5, 10, gen_b)])

        shared_rng = random.Random(42)
        aliased = tiny_cell(
            workload=phased(ZipfRequests(s=1.2, seed_rng=shared_rng),
                            ZipfRequests(s=1.2, seed_rng=shared_rng))
        )
        independent = tiny_cell(
            workload=phased(ZipfRequests(s=1.2, seed_rng=random.Random(42)),
                            ZipfRequests(s=1.2, seed_rng=random.Random(42)))
        )
        assert aliased.key() != independent.key()

    def test_mixed_schedule_signs_normalised_sources(self):
        """A mixed phase built from a bare generator and one built from its
        SteadySchedule wrapping behave identically — same signature."""
        from repro.workloads.dynamics import MixedSchedule, SchedulePhase, SteadySchedule
        from repro.workloads.requests import UniformRequests

        bare = tiny_cell(
            workload=MixedSchedule([SchedulePhase(0, 4, UniformRequests())])
        )
        wrapped = tiny_cell(
            workload=MixedSchedule(
                [SchedulePhase(0, 4, SteadySchedule(UniformRequests()))]
            )
        )
        assert bare.key() == wrapped.key()


class TestPlan:
    def test_deduplicates_by_hash(self):
        plan = plan_from_cells("p", [tiny_cell(label="a"), tiny_cell(label="b")])
        assert len(plan) == 1
        assert plan.cells[0].label == "a"  # first occurrence wins

    def test_shard_split_partitions_exactly(self):
        cells = [tiny_cell(seed=s) for s in range(10)]
        plan = plan_from_cells("p", cells)
        seen = []
        for shard in range(3):
            own, foreign = plan.shard_split(shard, 3)
            assert len(own) + len(foreign) == len(plan)
            seen.extend(c.key() for c in own)
        assert sorted(seen) == sorted(plan.keys())

    def test_shard_split_rejects_bad_shard(self):
        with pytest.raises(ValueError):
            plan_from_cells("p", [tiny_cell()]).shard_split(3, 3)

    def test_parse_shard(self):
        assert parse_shard("0/1") == (0, 1)
        assert parse_shard("2/4") == (2, 4)
        for bad in ("4/4", "x/2", "1", "-1/2"):
            with pytest.raises(ValueError):
                parse_shard(bad)


class TestPaperPlan:
    def test_smoke_plan_covers_all_artifacts(self):
        plan = paper_plan(PROFILES["smoke"])
        # 5 three-curve figures + fig9's two mappings + table1's grid +
        # the fault figures' (r, rate) grids, minus the points figures
        # share with Table 1 and the cells the two fault grids share
        # (deduplicated).
        assert len(plan) == 61

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ValueError):
            paper_plan(PROFILES["smoke"], only=["fig99"])

    def test_profiles_share_no_cells(self):
        smoke = set(paper_plan(PROFILES["smoke"]).keys())
        quick = set(paper_plan(PROFILES["quick"]).keys())
        assert not smoke & quick  # peers/runs differ -> disjoint identities
