"""One-command reproduction: plan coverage, manifest, CLI, determinism."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.sweeps import (
    ARTIFACTS,
    PROFILES,
    ResultStore,
    load_manifest,
    paper_plan,
    reproduce_paper,
)

#: The CI-grade profile: every test below runs the real 10-artifact
#: pipeline at 20 peers / 1 run per cell (a few seconds in total).
SMOKE = PROFILES["smoke"]


@pytest.fixture(scope="module")
def reproduction(tmp_path_factory):
    """One shared cold reproduction (module-scoped: the pipeline is the
    expensive part; every test only reads its outputs)."""
    root = tmp_path_factory.mktemp("paper")
    store = ResultStore(root / "store")
    doc, manifest_path = reproduce_paper(root / "out", store, SMOKE)
    return root, store, doc, manifest_path


class TestPlanCoversAssembly:
    def test_assembly_after_sweep_is_all_cache_hits(self, reproduction):
        """The declarative plan and the artifact builders must never drift.

        ``reproduce_paper`` sweeps the plan *before* assembling, so even on
        a cold store the assembly phase must be pure cache hits — a
        non-empty ``assembly_computed`` means the plan missed a cell some
        builder needs."""
        _, _, doc, _ = reproduction
        assert doc["assembly_computed"] == [], (
            f"plan drifted from assembly; missing cells: {doc['assembly_computed']}"
        )

    def test_store_holds_exactly_the_plan(self, reproduction):
        _, store, _, _ = reproduction
        assert sorted(store.keys()) == sorted(paper_plan(SMOKE).keys())


class TestReproducePaper:
    def test_all_artifacts_written(self, reproduction):
        root, _, doc, _ = reproduction
        assert set(doc["artifacts"]) == set(ARTIFACTS)
        for record in doc["artifacts"].values():
            path = root / "out" / record["path"]
            assert path.exists() and path.stat().st_size > 0

    def test_manifest_records_provenance(self, reproduction):
        _, _, doc, manifest_path = reproduction
        assert doc["schema"] == "repro-manifest/1"
        assert doc["profile"] == "smoke"
        assert doc["git_rev"] != "unknown"  # resolved from the source checkout
        assert doc["elapsed_s"] > 0
        # The cold run computed exactly the plan (fault grids overlap on
        # shared (r, rate) cells, which the plan de-duplicates).
        assert doc["sweep"]["computed"] == len(paper_plan(SMOKE))
        reloaded = load_manifest(manifest_path)
        assert reloaded["artifacts"].keys() == doc["artifacts"].keys()
        fig4 = doc["artifacts"]["fig4"]
        assert len(fig4["cells"]) == 3  # MLT, KC, NoLB
        assert fig4["computed_cells"] == fig4["cells"]  # cold: all fresh
        assert fig4["anchor"].startswith("Figure 4")

    def test_second_reproduction_is_byte_identical(self, reproduction):
        root, store, doc, _ = reproduction
        doc2, _ = reproduce_paper(root / "out2", store, SMOKE)
        for name, record in doc["artifacts"].items():
            assert doc2["artifacts"][name]["sha256"] == record["sha256"], name
        # ... and pure assembly: the warm pass computed no cells.
        assert all(not a["computed_cells"] for a in doc2["artifacts"].values())

    def test_only_restricts_artifacts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        doc, _ = reproduce_paper(
            tmp_path / "out", store, SMOKE, only=["table2"]
        )
        assert set(doc["artifacts"]) == {"table2"}
        assert len(store) == 0  # table2 bypasses the store


class TestCLI:
    def test_paper_subcommand(self, tmp_path, capsys):
        code = main([
            "paper", "--profile", "smoke", "--only", "table2",
            "--store", str(tmp_path / "store"), "--out", str(tmp_path / "out"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "manifest.json" in out
        manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
        assert manifest["schema"] == "repro-manifest/1"

    def test_sweep_subcommand_resumes(self, tmp_path, capsys):
        args = [
            "sweep", "--profile", "smoke", "--only", "fig4",
            "--store", str(tmp_path / "store"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "3 computed" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 computed" in warm and "3 cache hits" in warm

    def test_sweep_rejects_bad_shard(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--shard", "5/2", "--store", str(tmp_path / "s")])

    def test_list_names_the_new_subcommands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "sweep" in out
