"""Tier-2 benchmark: the result store's warm-cache speedup contract.

Run with ``PYTHONPATH=src python -m pytest -m bench -q``; excluded from
tier-1 by ``pytest.ini``.
"""

from __future__ import annotations

import pytest

from repro.perf.bench import run_scenario
from repro.perf.scenarios import SUITES

#: The store's contract (ISSUE 3 acceptance): warm re-runs of a sweep are
#: at least this much faster than cold recomputation.  Measured medians sit
#: around three orders of magnitude (JSON reads vs simulation), so 10× has
#: a wide margin against CI noise.
MIN_CACHE_SPEEDUP = 10.0


@pytest.mark.bench
def test_warm_sweep_is_at_least_10x_faster_than_cold():
    block = run_scenario(
        "sweep_cached", SUITES["micro"]["sweep_cached"], repeat=3, warmup=1
    )
    cold = block["impls"]["seed"]["median_s"]
    warm = block["impls"]["optimised"]["median_s"]
    assert block["speedup_median"] >= MIN_CACHE_SPEEDUP, (
        f"warm sweep only {block['speedup_median']:.1f}x faster than cold "
        f"(cold {cold:.3f}s, warm {warm:.3f}s); the result store's caching "
        f"contract is >= {MIN_CACHE_SPEEDUP:.0f}x"
    )
