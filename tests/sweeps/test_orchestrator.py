"""Orchestrator semantics: resume, sharding, work stealing, cached runner."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_many
from repro.sweeps import (
    ResultStore,
    SweepCell,
    cached_series_runner,
    plan_from_cells,
    run_sweep,
)
from repro.workloads.keys import blas_routines

TINY = dict(
    n_peers=10, corpus=blas_routines()[:40], growth_units=2,
    total_units=5, load_fraction=0.2,
)


def tiny_plan(n_cells=4, n_runs=2):
    cells = [
        SweepCell(config=ExperimentConfig(**TINY, seed=s), n_runs=n_runs, label=f"s{s}")
        for s in range(n_cells)
    ]
    return plan_from_cells("tiny", cells)


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


class TestRunSweep:
    def test_cold_sweep_computes_everything(self, store):
        plan = tiny_plan()
        report = run_sweep(plan, store)
        assert len(report.computed) == len(plan)
        assert len(report.cached) == 0
        assert sorted(store.keys()) == sorted(plan.keys())

    def test_warm_sweep_computes_nothing(self, store):
        plan = tiny_plan()
        run_sweep(plan, store)
        report = run_sweep(plan, store)
        assert len(report.computed) == 0
        assert len(report.cached) == len(plan)

    def test_interrupted_sweep_resumes_exactly_the_missing_cells(self, store):
        plan = tiny_plan(n_cells=5)
        done = plan.cells[:2]  # "the sweep died after two cells"
        for cell in done:
            series = run_many(cell.config, cell.n_runs, label=cell.label)
            store.put(cell.key(), series, cell.signature(), elapsed_s=0.1)
        report = run_sweep(plan, store)
        computed = {o.key for o in report.computed}
        assert computed == set(plan.keys()) - {c.key() for c in done}
        assert {o.key for o in report.cached} == {c.key() for c in done}

    def test_force_recomputes_cached_cells(self, store):
        plan = tiny_plan()
        run_sweep(plan, store)
        report = run_sweep(plan, store, force=True)
        assert len(report.computed) == len(plan)

    def test_sharded_sweep_steals_missing_foreign_cells(self, store):
        plan = tiny_plan(n_cells=6)
        own, foreign = plan.shard_split(0, 2)
        report = run_sweep(plan, store, shard=(0, 2))
        # Alone on the "cluster", shard 0 computes its slice and then
        # steals everything shard 1 never produced.
        assert {o.key for o in report.outcomes if o.source == "own"} == {
            c.key() for c in own
        }
        assert {o.key for o in report.stolen} == {c.key() for c in foreign}
        assert sorted(store.keys()) == sorted(plan.keys())

    def test_sharded_sweep_skips_foreign_cells_already_published(self, store):
        plan = tiny_plan(n_cells=6)
        run_sweep(plan, store, shard=(1, 2))  # "the other machine" finishes all
        report = run_sweep(plan, store, shard=(0, 2))
        assert len(report.computed) == 0

    def test_shards_partition_identically_across_calls(self, store):
        plan = tiny_plan(n_cells=8)
        first = [c.key() for c in plan.shard_split(0, 3)[0]]
        second = [c.key() for c in plan.shard_split(0, 3)[0]]
        assert first == second


class TestCachedRunner:
    def test_runner_matches_direct_execution(self, store):
        cell = tiny_plan(n_cells=1).cells[0]
        runner = cached_series_runner(store)
        via_runner = runner(cell.config, cell.n_runs, cell.label)
        direct = run_many(cell.config, cell.n_runs, label=cell.label)
        for a, b in zip(via_runner.runs, direct.runs):
            assert a.satisfied_pct == b.satisfied_pct

    def test_runner_hits_after_sweep(self, store):
        plan = tiny_plan()
        run_sweep(plan, store)
        actions = []
        runner = cached_series_runner(
            store, on_cell=lambda cell, key, action: actions.append(action)
        )
        for cell in plan.cells:
            runner(cell.config, cell.n_runs, cell.label)
        assert actions == ["cached"] * len(plan)

    def test_runner_serves_requested_label_on_hit(self, store):
        cell = tiny_plan(n_cells=1).cells[0]
        runner = cached_series_runner(store)
        runner(cell.config, cell.n_runs, "first-label")
        again = runner(cell.config, cell.n_runs, "second-label")
        assert again.label == "second-label"
