"""Chord ring: consistent hashing, finger routing, hop scaling."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.chord import ChordRing
from repro.dht.hashing import hash_to_int, to_binary_string


class TestHashing:
    def test_deterministic(self):
        assert hash_to_int("dgemm") == hash_to_int("dgemm")

    def test_within_bits(self):
        for bits in (8, 16, 32):
            v = hash_to_int("key", bits)
            assert 0 <= v < (1 << bits)

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            hash_to_int("x", 0)
        with pytest.raises(ValueError):
            hash_to_int("x", 161)

    def test_binary_string_width(self):
        s = to_binary_string("key", 16)
        assert len(s) == 16 and set(s) <= {"0", "1"}

    def test_binary_string_matches_int(self):
        assert int(to_binary_string("key", 16), 2) == hash_to_int("key", 16)


def ring_with(n, bits=16):
    ring = ChordRing(bits=bits)
    for i in range(n):
        ring.add_peer(f"peer-{i:04d}")
    return ring


class TestMembership:
    def test_add_remove(self):
        ring = ring_with(5)
        assert len(ring) == 5
        ring.remove_peer("peer-0000")
        assert len(ring) == 4
        ring.check_invariants()

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            ring_with(2).remove_peer("ghost")

    def test_duplicate_position_rejected(self):
        ring = ring_with(3)
        with pytest.raises(ValueError):
            ring.add_peer("peer-0000")

    def test_bulk_add_matches_individual(self):
        ids = [f"peer-{i:04d}" for i in range(40)]
        bulk = ChordRing()
        bulk.add_peers(ids)
        one_by_one = ChordRing()
        for pid in ids:
            one_by_one.add_peer(pid)
        bulk.check_invariants()
        assert [n.position for n in bulk.nodes()] == [
            n.position for n in one_by_one.nodes()
        ]
        assert bulk.successor_peer("dgemm") == one_by_one.successor_peer("dgemm")

    def test_bulk_add_rejects_collision_atomically(self):
        ring = ring_with(3)
        with pytest.raises(ValueError):
            ring.add_peers(["peer-9000", "peer-0000"])
        # The fresh id ahead of the collision must not have been admitted.
        assert len(ring) == 3
        ring.check_invariants()


class TestConsistentHashing:
    def test_successor_peer_is_clockwise_owner(self):
        ring = ring_with(10)
        positions = sorted(n.position for n in ring.nodes())
        key = "some-key"
        pos = hash_to_int(key, ring.bits)
        expected_pos = min((p for p in positions if p >= pos), default=positions[0])
        owner = ring.successor_peer(key)
        assert ring.position_of(owner) == expected_pos

    def test_empty_ring_raises(self):
        with pytest.raises(RuntimeError):
            ChordRing().successor_position(0)

    @given(n=st.integers(1, 30), key=st.text(min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_lookup_agrees_with_successor(self, n, key):
        """Finger routing lands on the same peer consistent hashing names."""
        ring = ring_with(n)
        owner, hops = ring.lookup(key)
        assert owner == ring.successor_peer(key)
        assert hops <= n


class TestRoutingCost:
    def test_single_node_zero_hops(self):
        ring = ring_with(1)
        owner, hops = ring.lookup("k")
        assert owner == "peer-0000" and hops == 0

    def test_hops_scale_logarithmically(self):
        """Mean lookup hops grow like (1/2)·log2(P) — Chord's classic bound
        (checked loosely: within a factor of 2)."""
        rng = random.Random(1)
        means = {}
        for n in (16, 64, 256):
            ring = ring_with(n, bits=24)
            hops = []
            for i in range(300):
                start = f"peer-{rng.randrange(n):04d}"
                _, h = ring.lookup(f"key-{i}", start_peer=start)
                hops.append(h)
            means[n] = sum(hops) / len(hops)
        for n, mean in means.items():
            assert mean <= 2.0 * math.log2(n), (n, mean)
        assert means[256] > means[16]

    def test_lookup_from_every_start(self):
        ring = ring_with(12)
        for node in ring.nodes():
            owner, hops = ring.lookup("target", start_peer=node.peer_id)
            assert owner == ring.successor_peer("target")

    def test_fingers_rebuilt_after_churn(self):
        ring = ring_with(10)
        ring.lookup("a")  # builds fingers
        ring.remove_peer("peer-0003")
        owner, _ = ring.lookup("a")  # must re-route correctly
        assert owner == ring.successor_peer("a")
